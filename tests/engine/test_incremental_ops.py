"""Parity suites for the incremental distinct and top-k sort rework.

Both operators must behave exactly like a one-shot recompute over the
concatenated history — including NaN keys, empty partials, boundary
ties, and REPLACE inputs that shrink — while costing O(|message|), not
O(total consumed), per message.
"""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.dataframe.groupby import distinct_rows
from repro.dataframe.sort import sort_frame
from repro.core.properties import Delivery, Progress, StreamInfo
from repro.engine.message import Message
from repro.engine.ops import DistinctOperator, SortLimitOperator


def _message(frame, done, total, kind=Delivery.DELTA):
    return Message(
        frame=frame,
        progress=Progress(done={"t": done}, total={"t": total}),
        kind=kind,
    )


def _drive(op, frames, kind=Delivery.DELTA):
    """Feed frames as a stream; returns the emitted output frames."""
    total = len(frames)
    out = []
    for i, frame in enumerate(frames):
        for message in op.on_message(0, _message(frame, i + 1, total,
                                                 kind)):
            out.append(message.frame)
    return out


def _delta_info(frame):
    return StreamInfo(schema=frame.schema, delivery=Delivery.DELTA)


def _replace_info(frame):
    return StreamInfo(schema=frame.schema, delivery=Delivery.REPLACE)


def _random_parts(seed, n_parts=12, rows=40, with_nan=True):
    rng = np.random.default_rng(seed)
    parts = []
    for i in range(n_parts):
        n = 0 if i in (3, 7) else rows  # include empty partials
        k = rng.integers(0, 25, size=n).astype(np.float64)
        if with_nan and n:
            k[rng.random(n) < 0.15] = np.nan
        parts.append(DataFrame({
            "k": k,
            "s": np.array([f"g{int(v) % 4}" if v == v else "gn"
                           for v in k], dtype="<U2"),
            "v": rng.normal(size=n),
        }))
    return parts


class TestIncrementalDistinct:
    @pytest.mark.parametrize("subset", [("k",), ("k", "s"), ()])
    def test_matches_one_shot(self, subset):
        parts = _random_parts(seed=1)
        op = DistinctOperator("d", subset=subset)
        op.bind((_delta_info(parts[0]),))
        outs = _drive(op, parts)
        got = DataFrame.concat(outs)
        expected = distinct_rows(
            DataFrame.concat(parts), list(subset) or None
        )
        assert got.equals(expected, rtol=0, atol=0)

    def test_single_nan_group_across_messages(self):
        a = DataFrame({"k": np.array([np.nan, 1.0])})
        b = DataFrame({"k": np.array([np.nan, 2.0, 1.0])})
        op = DistinctOperator("d")
        op.bind((_delta_info(a),))
        outs = _drive(op, [a, b])
        got = np.concatenate([f.column("k") for f in outs])
        np.testing.assert_array_equal(got, [np.nan, 1.0, 2.0])

    def test_string_keys_across_widths(self):
        a = DataFrame({"k": np.array(["ab", "c"])})
        b = DataFrame({"k": np.array(["ab", "longer-string", "c"])})
        op = DistinctOperator("d")
        op.bind((_delta_info(a),))
        outs = _drive(op, [a, b])
        got = [v for f in outs for v in f.column("k").tolist()]
        assert got == ["ab", "c", "longer-string"]

    def test_replace_input_dedups_wholesale(self):
        a = DataFrame({"k": np.array([1.0, 1.0, 2.0])})
        shrunk = DataFrame({"k": np.array([2.0, 2.0])})
        op = DistinctOperator("d")
        op.bind((_replace_info(a),))
        outs = _drive(op, [a, shrunk], kind=Delivery.REPLACE)
        assert outs[0].column("k").tolist() == [1.0, 2.0]
        assert outs[1].column("k").tolist() == [2.0]  # no seen-set leak


class TestTopKSort:
    def _reference(self, parts, by, ascending, limit):
        frame = DataFrame.concat(parts)
        if by and frame.n_rows:
            frame = sort_frame(frame, list(by), ascending)
        if limit is not None:
            frame = frame.head(limit)
        return frame

    @pytest.mark.parametrize("limit", [0, 3, 10, 1000])
    @pytest.mark.parametrize("ascending", [True, False])
    def test_topk_matches_full_resort_every_message(
        self, limit, ascending
    ):
        parts = _random_parts(seed=2)
        op = SortLimitOperator("t", by=["v"], ascending=ascending,
                               limit=limit)
        op.bind((_delta_info(parts[0]),))
        outs = _drive(op, parts)
        for i, got in enumerate(outs):
            expected = self._reference(parts[:i + 1], ("v",), ascending,
                                       limit)
            assert got.equals(expected, rtol=0, atol=0), f"message {i}"

    def test_boundary_ties_keep_first_seen(self):
        """Stable-sort ties at the k boundary must match a full re-sort
        (earliest arrival wins)."""
        parts = [
            DataFrame({"v": np.array([1.0, 1.0]),
                       "tag": np.array(["a", "b"])}),
            DataFrame({"v": np.array([1.0, 0.0]),
                       "tag": np.array(["c", "d"])}),
            DataFrame({"v": np.array([1.0]), "tag": np.array(["e"])}),
        ]
        op = SortLimitOperator("t", by=["v"], limit=3)
        op.bind((_delta_info(parts[0]),))
        outs = _drive(op, parts)
        assert outs[-1].column("tag").tolist() == ["d", "a", "b"]
        expected = self._reference(parts, ("v",), True, 3)
        assert outs[-1].equals(expected, rtol=0, atol=0)

    def test_nan_sort_keys(self):
        parts = [
            DataFrame({"v": np.array([np.nan, 2.0])}),
            DataFrame({"v": np.array([1.0, np.nan])}),
        ]
        op = SortLimitOperator("t", by=["v"], limit=3)
        op.bind((_delta_info(parts[0]),))
        outs = _drive(op, parts)
        expected = self._reference(parts, ("v",), True, 3)
        assert outs[-1].equals(expected, rtol=0, atol=0)

    def test_limit_only_bounded_buffer(self):
        parts = _random_parts(seed=3, with_nan=False)
        op = SortLimitOperator("t", limit=7)
        op.bind((_delta_info(parts[0]),))
        outs = _drive(op, parts)
        for i, got in enumerate(outs):
            expected = self._reference(parts[:i + 1], (), True, 7)
            assert got.equals(expected, rtol=0, atol=0)
        # the retained buffer never exceeds the limit
        assert op._topk is not None and op._topk.n_rows <= 7

    def test_unbounded_sort_cached_concat(self):
        parts = _random_parts(seed=4)
        op = SortLimitOperator("t", by=["v", "k"])
        op.bind((_delta_info(parts[0]),))
        outs = _drive(op, parts)
        expected = self._reference(parts, ("v", "k"), True, None)
        assert outs[-1].equals(expected, rtol=0, atol=0)

    def test_replace_shrink_resets_state(self):
        big = DataFrame({"v": np.arange(10, dtype=np.float64)})
        small = DataFrame({"v": np.array([5.0, 3.0])})
        empty = DataFrame({"v": np.empty(0, dtype=np.float64)})
        op = SortLimitOperator("t", by=["v"], limit=4)
        op.bind((_replace_info(big),))
        outs = _drive(op, [big, small, empty], kind=Delivery.REPLACE)
        assert outs[0].column("v").tolist() == [0.0, 1.0, 2.0, 3.0]
        assert outs[1].column("v").tolist() == [3.0, 5.0]  # no leak
        assert outs[2].n_rows == 0


def test_estimate_csv_bytes_excludes_header():
    import csv
    import io

    from repro.storage.partition import estimate_csv_bytes

    n = 5000
    frame = DataFrame({
        "a_rather_long_header_name_one": np.ones(n, dtype=np.int64),
        "a_rather_long_header_name_two": np.ones(n, dtype=np.int64),
    })
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(frame.column_names)
    for row in frame.iter_rows():
        writer.writerow(row)
    actual = len(buffer.getvalue())
    estimate = estimate_csv_bytes(frame)
    # rows are uniform, so the estimate should land essentially on the
    # actual size; the seed folded one header copy into every 100 rows
    # (~15x overestimate at this row width).
    assert abs(estimate - actual) / actual < 0.01

    small = DataFrame({name: frame.column(name)[:50]
                       for name in frame.column_names})
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(small.column_names)
    for row in small.iter_rows():
        writer.writerow(row)
    assert estimate_csv_bytes(small) == len(buffer.getvalue())
