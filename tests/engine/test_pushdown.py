"""Scan-layer pushdown: projection collection, zone-map pruning, and the
restart-safe reader.

The invariant everything here guards: pushdown is *semantically
invisible*.  Projection only removes columns no downstream operator can
reference, and a pruned partition still advances progress by its tuple
count through an empty partial — finals, snapshot frames, and progress
``t`` sequences are byte-identical with pushdown off.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import F, WakeContext, col
from repro.dataframe import DataFrame
from repro.engine.graph import QueryGraph
from repro.engine.ops import ReadOperator
from repro.engine.planner import pushdown_plan
from repro.storage import Catalog, write_table
from repro.storage.zonemap import (
    SargablePredicate,
    column_stats,
    sargable_conjuncts,
)


def _pushed_reads(plan):
    """Materialize a plan, run the pushdown pass, return its scans."""
    graph = QueryGraph()
    output = plan.plan.materialize(graph, {})
    pushdown_plan(graph, output)
    return {
        graph.node(nid).operator.meta.name: graph.node(nid).operator
        for nid in graph.source_ids()
        if isinstance(graph.node(nid).operator, ReadOperator)
    }


def assert_frames_byte_identical(got, expected):
    assert tuple(got.column_names) == tuple(expected.column_names)
    assert got.n_rows == expected.n_rows
    for name in expected.column_names:
        assert (got.column(name).tobytes()
                == expected.column(name).tobytes())


class TestProjectionCollection:
    def test_filter_select_agg_chain(self, catalog):
        ctx = WakeContext(catalog)
        plan = (
            ctx.table("sales")
            .filter(col("okey") < 15)
            .select(gain=col("qty") * 2.0)
            .agg(F.sum("gain").alias("s"))
        )
        reads = _pushed_reads(plan)
        # qty feeds the select, okey only the filter — region/cust drop.
        assert reads["sales"].columns == ("okey", "qty")

    def test_join_maps_columns_to_both_sides(self, catalog):
        ctx = WakeContext(catalog)
        joined = ctx.table("sales").join(
            ctx.table("customers"), on=[("cust", "ckey")]
        )
        plan = joined.select(("qty", col("qty")), ("name", col("name")))
        reads = _pushed_reads(plan)
        assert reads["sales"].columns == ("qty", "cust")
        assert reads["customers"].columns == ("ckey", "name")

    def test_count_keeps_one_column(self, catalog):
        ctx = WakeContext(catalog)
        reads = _pushed_reads(ctx.table("sales").count())
        # No column is referenced, but a zero-column frame would lose
        # the row count — the primary key survives as the cheapest scan.
        assert reads["sales"].columns == ("okey",)

    def test_bare_scan_is_untouched(self, catalog):
        ctx = WakeContext(catalog)
        reads = _pushed_reads(ctx.table("sales"))
        assert reads["sales"].columns is None
        assert reads["sales"].predicates == ()

    def test_projection_drops_unselected_keys(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"))
        graph = QueryGraph()
        output = plan.plan.materialize(graph, {})
        pushdown_plan(graph, output)
        infos = graph.resolve()
        read_id = graph.source_ids()[0]
        # okey (the clustering+primary key) is not read, so the scan
        # must not advertise key/clustering properties it cannot honor.
        assert infos[read_id].schema.names == ("qty",)
        assert infos[read_id].primary_key == ()
        assert infos[read_id].clustering_key == ()


class TestPredicateCollection:
    def test_predicates_reach_the_scan(self, catalog):
        ctx = WakeContext(catalog)
        plan = (
            ctx.table("sales")
            .filter((col("okey") < 15) & (col("qty") > 0.0))
            .agg(F.sum("qty").alias("s"))
        )
        reads = _pushed_reads(plan)
        assert set((p.column, p.op) for p in reads["sales"].predicates) \
            == {("okey", "<"), ("qty", ">")}

    def test_rename_translates_column_names(self, catalog):
        ctx = WakeContext(catalog)
        plan = (
            ctx.table("sales")
            .select(key=col("okey"), qty=col("qty"))
            .filter(col("key") < 15)
            .agg(F.sum("qty").alias("s"))
        )
        reads = _pushed_reads(plan)
        assert [(p.column, p.op, p.value)
                for p in reads["sales"].predicates] == [("okey", "<", 15)]

    def test_fan_out_blocks_predicate_pushdown(self, catalog):
        """A second subscriber sees unfiltered rows — pruning for one
        branch would corrupt the other."""
        ctx = WakeContext(catalog)
        base = ctx.table("sales")
        filtered = base.filter(col("okey") < 5).sum("qty")
        everything = base.sum("qty")
        combined = filtered.cross_join(everything, suffix="_all")
        reads = _pushed_reads(combined)
        assert reads["sales"].predicates == ()

    def test_derived_filter_is_not_sargable(self, catalog):
        ctx = WakeContext(catalog)
        plan = (
            ctx.table("sales")
            .filter(col("qty") * 2.0 > 10.0)
            .agg(F.sum("qty").alias("s"))
        )
        reads = _pushed_reads(plan)
        assert reads["sales"].predicates == ()


class TestZoneMapEvaluation:
    def test_sargable_extraction(self):
        expr = (
            col("a").between(3, 7)
            & (col("b") == "x")
            & ((col("a") > 1) | (col("b") == "y"))  # disjunction: dropped
            & col("c").isin([1, 2])
        )
        preds = sargable_conjuncts(expr)
        assert [(p.column, p.op) for p in preds] == [
            ("a", ">="), ("a", "<"), ("b", "=="), ("c", "isin"),
        ]

    def test_literal_on_the_left_flips(self):
        from repro.dataframe.expr import lit

        (pred,) = sargable_conjuncts(lit(5) > col("a"))
        assert (pred.column, pred.op, pred.value) == ("a", "<", 5)

    def test_may_match_ranges(self):
        stats = {"min": 10, "max": 20, "nulls": 0}
        assert SargablePredicate("a", ">", 19).may_match(stats)
        assert not SargablePredicate("a", ">", 20).may_match(stats)
        assert SargablePredicate("a", ">=", 20).may_match(stats)
        assert not SargablePredicate("a", "<", 10).may_match(stats)
        assert SargablePredicate("a", "==", 15).may_match(stats)
        assert not SargablePredicate("a", "==", 9).may_match(stats)
        assert SargablePredicate("a", "isin", (1, 12)).may_match(stats)
        assert not SargablePredicate("a", "isin", (1, 2)).may_match(stats)

    def test_all_null_partition_prunes_comparisons(self):
        stats = column_stats(np.array([np.nan, np.nan]))
        assert not SargablePredicate("a", ">", 0.0).may_match(stats)

    def test_mixed_types_never_prune(self):
        stats = {"min": "alpha", "max": "zeta", "nulls": 0}
        assert SargablePredicate("a", ">", 3).may_match(stats)

    def test_missing_stats_never_prune(self):
        assert SargablePredicate("a", ">", 3).may_match(None)


class TestPrunedExecutionParity:
    @pytest.fixture
    def plans(self, catalog):
        def build(ctx):
            return (
                ctx.table("sales")
                .filter(col("okey") < 15)
                .agg(F.sum("qty").alias("s"), by=["cust"])
            )

        return build

    def test_partitions_actually_pruned(self, catalog, plans):
        ctx = WakeContext(catalog)
        reads = _pushed_reads(plans(ctx))
        # sales partitions hold okeys [0-4],[5-9],...,[25-29]; the last
        # three can never satisfy okey < 15.
        assert reads["sales"].pruned_partitions() == frozenset({3, 4, 5})

    def test_finals_and_progress_identical(self, catalog, plans):
        on = WakeContext(catalog, pushdown=True)
        off = WakeContext(catalog, pushdown=False)
        seq_on = on.run(plans(on))
        seq_off = off.run(plans(off))
        assert len(seq_on) == len(seq_off)
        for a, b in zip(seq_on.snapshots, seq_off.snapshots):
            assert dict(a.progress.done) == dict(b.progress.done)
            assert a.t == b.t
            assert_frames_byte_identical(a.frame, b.frame)

    def test_shuffled_order_composes_with_pruning(self, catalog, plans):
        on = WakeContext(catalog, partition_shuffle_seed=11)
        off = WakeContext(catalog, partition_shuffle_seed=11,
                          pushdown=False)
        assert_frames_byte_identical(
            on.run(plans(on), capture_all=False).get_final(),
            off.run(plans(off), capture_all=False).get_final(),
        )

    def test_explain_renders_pushdowns(self, catalog, plans):
        ctx = WakeContext(catalog)
        text = ctx.explain(plans(ctx))
        assert "columns=['okey', 'qty', 'cust']" in text
        assert "okey < 15" in text
        assert "prune=3/6" in text
        assert "scan" in text
        off = ctx.explain(plans(ctx), pushdown=False)
        assert "prune=" not in off


class TestRestartSafeStream:
    def test_two_full_streams_do_not_double_count(self, catalog):
        read = ReadOperator(catalog.table("sales"))
        first = list(read.stream())
        again = list(read.stream())
        assert len(first) == len(again) == 6
        assert read.progress.done == {"sales": 60}
        assert read.progress.is_complete

    def test_restart_resets_per_stream_progress(self, catalog):
        """An abandoned iteration (e.g. a retried dry-run) must not leak
        stale progress into the next stream."""
        read = ReadOperator(catalog.table("sales"))
        stream = read.stream()
        next(stream)
        next(stream)
        assert read.progress.done == {"sales": 20}
        replay = list(read.stream())
        assert [m.progress.done["sales"] for m in replay] == [
            10, 20, 30, 40, 50, 60,
        ]
        assert read.progress.done == {"sales": 60}


@settings(max_examples=15, deadline=None)
@given(
    values=st.lists(st.integers(-50, 50), min_size=40, max_size=40),
    threshold=st.integers(-60, 60),
)
def test_pruned_scan_property(values, threshold):
    """Any data + any sargable threshold: pruned and unpruned scans give
    byte-identical finals and identical snapshot ``t`` sequences."""
    with tempfile.TemporaryDirectory() as tmp:
        frame = DataFrame({
            "k": np.sort(np.array(values, dtype=np.int64)),
            "v": np.arange(40, dtype=np.float64),
        })
        cat = Catalog(root=tmp)
        write_table(cat, Path(tmp), "t", frame, rows_per_partition=10,
                    primary_key=[])
        def build(ctx):
            return (
                ctx.table("t")
                .filter(col("k") <= threshold)
                .agg(F.sum("v").alias("s"), F.count().alias("n"))
            )

        on = WakeContext(cat)
        off = WakeContext(cat, pushdown=False)
        seq_on = on.run(build(on))
        seq_off = off.run(build(off))
        assert len(seq_on) == len(seq_off)
        for a, b in zip(seq_on.snapshots, seq_off.snapshots):
            assert a.t == b.t
            assert dict(a.progress.done) == dict(b.progress.done)
            assert_frames_byte_identical(a.frame, b.frame)
