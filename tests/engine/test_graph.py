"""Unit tests for the query graph."""

import pytest

from repro.dataframe import AggSpec, col
from repro.engine import QueryGraph
from repro.engine.ops import (
    AggregateOperator,
    FilterOperator,
    HashJoinOperator,
    ReadOperator,
)
from repro.errors import QueryError


class TestGraphConstruction:
    def test_arity_validation(self, catalog):
        graph = QueryGraph()
        with pytest.raises(QueryError, match="needs 2 inputs"):
            graph.add(HashJoinOperator("j", ["a"], ["b"]))

    def test_unknown_input(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        with pytest.raises(QueryError, match="does not exist"):
            graph.add(FilterOperator("f", col("qty") > 1), (read + 99,))

    def test_node_lookup(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        assert graph.node(read).operator.name == "read(sales)"
        with pytest.raises(QueryError):
            graph.node(42)

    def test_validate_output(self, catalog):
        graph = QueryGraph()
        graph.add(ReadOperator(catalog.table("sales")))
        with pytest.raises(QueryError):
            graph.validate_output(17)


class TestResolution:
    def test_resolve_is_cached(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        first = graph.resolve()
        assert graph.resolve() is first
        graph.add(FilterOperator("f", col("qty") > 1), (read,))
        second = graph.resolve()
        assert second is not first

    def test_subscribers(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        f1 = graph.add(FilterOperator("f1", col("qty") > 1), (read,))
        f2 = graph.add(FilterOperator("f2", col("qty") > 2), (read,))
        subs = graph.subscribers()
        assert subs[read] == [(f1, 0), (f2, 0)]
        assert subs[f1] == []

    def test_upstream_sources(self, catalog):
        graph = QueryGraph()
        sales = graph.add(ReadOperator(catalog.table("sales")))
        cust = graph.add(ReadOperator(catalog.table("customers")))
        join = graph.add(
            HashJoinOperator("j", ["cust"], ["ckey"]), (sales, cust)
        )
        assert graph.upstream_sources(join) == {sales, cust}
        assert graph.upstream_sources(cust) == {cust}

    def test_priorities_nested_builds(self, catalog):
        """A build subtree containing another join marks all its sources."""
        graph = QueryGraph()
        sales = graph.add(ReadOperator(catalog.table("sales")))
        cust_a = graph.add(ReadOperator(catalog.table("customers")))
        cust_b = graph.add(
            ReadOperator(catalog.table("customers"),
                         name="read(customers2)",
                         source_name="customers2")
        )
        inner = graph.add(
            HashJoinOperator("inner", ["ckey"], ["ckey"]),
            (cust_a, cust_b),
        )
        graph.add(
            HashJoinOperator("outer", ["cust"], ["ckey"]), (sales, inner)
        )
        priorities = graph.source_priorities()
        assert priorities[cust_a] == 0
        assert priorities[cust_b] == 0
        assert priorities[sales] == 1

    def test_agg_sources_stream(self, catalog):
        graph = QueryGraph()
        sales = graph.add(ReadOperator(catalog.table("sales")))
        graph.add(
            AggregateOperator("a", [AggSpec("sum", "qty", "s")],
                              by=["cust"]),
            (sales,),
        )
        assert graph.source_priorities()[sales] == 1
