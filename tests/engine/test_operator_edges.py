"""Edge-path tests for operators: buffered cross joins, REPLACE-input
distinct, CI propagation through selects, ragged merge-join partitions."""

import numpy as np
import pytest

from repro import CIConfig, F, WakeContext, col
from repro.core.ci import sigma_column
from repro.core.properties import Delivery
from repro.storage import write_table


class TestCrossJoinBufferedMode:
    """Right side DELTA: buffered to EOF, then left streams through."""

    def test_delta_right_buffers(self, catalog):
        ctx = WakeContext(catalog)
        left = ctx.table("sales")
        right = ctx.table("customers").project("segment").distinct(
            "segment")
        crossed = left.cross_join(right)
        info = crossed.stream_info()
        assert info.delivery == Delivery.DELTA  # buffered, not live
        final = crossed.final()
        # 60 sales x 2 segments
        assert final.n_rows == 120

    def test_live_mode_replace_right(self, catalog):
        ctx = WakeContext(catalog)
        right = ctx.table("sales").agg(F.max("qty").alias("mx"))
        crossed = ctx.table("sales").cross_join(right)
        assert crossed.stream_info().delivery == Delivery.REPLACE
        final = crossed.final()
        assert final.n_rows == 60
        expected = catalog.table("sales").read_all().column("qty").max()
        assert (final.column("mx") == expected).all()


class TestDistinctOnReplaceInput:
    def test_distinct_after_aggregate(self, catalog):
        ctx = WakeContext(catalog)
        agg = ctx.table("sales").agg(
            F.sum("qty").alias("s"), by=["cust", "region"]
        )
        # distinct over the REPLACE stream's constant key column
        out = agg.project("region").distinct("region")
        assert out.stream_info().delivery == Delivery.REPLACE
        final = out.final()
        assert sorted(final.column("region").tolist()) == [
            "east", "west"]


class TestSelectCIPropagation:
    def test_ratio_sigma_propagates(self, catalog):
        ctx = WakeContext(catalog, ci=CIConfig(0.95))
        sums = ctx.table("sales").agg(
            F.sum("qty").alias("a"), F.count(None).alias("b")
        )
        ratio = sums.select(r=col("a") / col("b"))
        edf = ctx.run(ratio)
        early = edf.snapshots[0].frame
        assert sigma_column("r") in early.column_names
        assert np.isfinite(early.column(sigma_column("r"))[0])
        # delta-method: Var(a/b) > 0 while a has spread mid-stream
        assert early.column(sigma_column("r"))[0] >= 0.0

    def test_constant_projection_has_no_sigma(self, catalog):
        ctx = WakeContext(catalog, ci=CIConfig(0.95))
        out = ctx.table("sales").select(okey="okey", q=col("qty"))
        frame = out.final()
        assert sigma_column("q") not in frame.column_names


class TestMergeJoinRaggedPartitions:
    """Different partition geometries on the two sides: the watermark
    logic must never emit early or drop boundary clusters."""

    @pytest.mark.parametrize("rpp_b", [3, 7, 13, 60])
    def test_join_complete_under_geometry(self, catalog, sales_frame,
                                          tmp_path, rpp_b):
        write_table(
            catalog, tmp_path / f"g{rpp_b}", f"sales_{rpp_b}",
            sales_frame, rows_per_partition=rpp_b,
            primary_key=["okey"], clustering_key=["okey"],
        )
        ctx = WakeContext(catalog)
        joined = ctx.table("sales").join(
            ctx.table(f"sales_{rpp_b}"), on="okey", method="merge"
        )
        final = joined.final()
        # 2 rows per okey on each side -> 4 joined rows per okey
        assert final.n_rows == 30 * 4
        counts = np.bincount(final.column("okey"), minlength=30)
        assert (counts == 4).all()

    def test_merge_join_no_duplicates_across_watermarks(
            self, catalog, sales_frame, tmp_path):
        write_table(
            catalog, tmp_path / "dup", "sales_dup", sales_frame,
            rows_per_partition=11,
            primary_key=["okey"], clustering_key=["okey"],
        )
        ctx = WakeContext(catalog)
        joined = ctx.table("sales").join(
            ctx.table("sales_dup"), on="okey", method="merge"
        )
        edf = ctx.run(joined)
        # DELTA stream: total rows across snapshots equals final rows
        assert edf.get_final().n_rows == 120
        # each snapshot only grows (no re-emission)
        sizes = [s.frame.n_rows for s in edf.snapshots]
        assert sizes == sorted(sizes)


class TestLeftJoinThroughEngine:
    def test_unmatched_rows_survive(self, catalog):
        ctx = WakeContext(catalog)
        east_sales = ctx.table("sales").filter(
            col("region") == "east")
        # customers c0..c4; east sales only involve even okey customers
        out = ctx.table("customers").join(
            east_sales.project("cust", "qty"),
            on=[("ckey", "cust")], how="left",
        )
        final = out.final()
        # every customer row appears at least once
        assert set(final.column("ckey").tolist()) == {
            f"c{i}" for i in range(5)}
        # unmatched customers carry NaN qty
        nan_rows = np.isnan(final.column("qty"))
        matched = set(
            np.asarray(final.column("ckey"))[~nan_rows].tolist()
        )
        unmatched = set(
            np.asarray(final.column("ckey"))[nan_rows].tolist()
        )
        assert not (matched & unmatched)


class TestHashJoinBuildsIndexOnce:
    """The build side must be factorized into a JoinIndex exactly once
    per build, no matter how many probe partitions stream through."""

    def test_single_index_across_probe_stream(self, catalog, monkeypatch):
        from repro.dataframe.join import JoinIndex
        from repro.engine.ops import join as join_ops

        built = []

        class CountingIndex(JoinIndex):
            def __init__(self, *args, **kwargs):
                built.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(join_ops, "JoinIndex", CountingIndex)
        ctx = WakeContext(catalog)
        joined = ctx.table("sales").join(
            ctx.table("customers"), on=[("cust", "ckey")], method="hash"
        )
        edf = ctx.run(joined)
        # sales streams 6 probe partitions; the build side indexes once.
        assert len(edf) >= 2
        assert built == [1]
        assert edf.get_final().n_rows == 60
