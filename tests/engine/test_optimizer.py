"""Rule engine behaviour: rules fire where expected, every escape hatch
works, and each rewrite preserves byte-identical snapshot sequences.

The rules' correctness contract is checked two ways: structurally here
(the optimized graph has the expected operator counts) and behaviourally
— the optimized plan's snapshot sequence must match the unoptimized
plan's snapshot for snapshot, byte for byte.
"""

import numpy as np
import pytest

from repro import WakeContext, col
from repro.api.functions import F
from repro.errors import QueryError
from repro.engine.graph import QueryGraph
from repro.engine.optimizer import (
    LOGICAL_RULE_NAMES,
    RULE_NAMES,
    build_optimizer,
    validate_rule_names,
)
from repro.engine.ops import (
    AggregateOperator,
    FilterOperator,
    SelectOperator,
)


def _optimized_graph(frame, **kwargs):
    graph = QueryGraph()
    output = frame.plan.materialize(graph, {})
    optimizer = build_optimizer(**kwargs)
    return optimizer.optimize(graph, output)


def _count(graph, op_type):
    return sum(
        1 for node in graph.nodes.values()
        if isinstance(node.operator, op_type)
    )


def _assert_sequences_identical(seq_a, seq_b):
    assert len(seq_a) == len(seq_b)
    for a, b in zip(seq_a.snapshots, seq_b.snapshots):
        assert a.sequence == b.sequence
        assert a.t == b.t
        assert dict(a.progress.done) == dict(b.progress.done)
        assert tuple(a.frame.column_names) == tuple(b.frame.column_names)
        for name in a.frame.column_names:
            assert (a.frame.column(name).tobytes()
                    == b.frame.column(name).tobytes()), name


# ---------------------------------------------------------------------------
# combine-filters
# ---------------------------------------------------------------------------

def test_combine_filters_collapses_chain(catalog):
    ctx = WakeContext(catalog)
    q = (
        ctx.table("sales")
        .filter(col("cust").contains("c1"))   # string work: ranked last
        .filter(col("qty") > 5.0)             # sargable: ranked first
        .filter(col("qty") < 45.0)
        .agg(F.sum("qty").alias("s"), by=["region"])
    )
    graph, _out, trace = _optimized_graph(q)
    assert _count(graph, FilterOperator) == 1
    assert trace.by_rule()["combine-filters"] >= 2


def test_combine_filters_orders_sargable_first(catalog):
    from repro.engine.plan_node import flatten_conjuncts
    from repro.dataframe.expr import StringExpr

    ctx = WakeContext(catalog)
    q = (
        ctx.table("sales")
        .filter(col("cust").contains("c1"))
        .filter(col("qty") > 5.0)
        .agg(F.count().alias("n"))
    )
    graph, _out, _trace = _optimized_graph(q)
    (fid,) = [
        nid for nid, node in graph.nodes.items()
        if isinstance(node.operator, FilterOperator)
    ]
    conjuncts = flatten_conjuncts(graph.node(fid).operator.predicate)
    assert not isinstance(conjuncts[0], StringExpr)
    assert isinstance(conjuncts[-1], StringExpr)


def test_combine_filters_sequences_byte_identical(catalog):
    ctx_on = WakeContext(catalog)
    ctx_off = WakeContext(catalog, optimize=False, pushdown=False)

    def q(ctx):
        return (
            ctx.table("sales")
            .filter(col("cust").contains("c1"))
            .filter(col("qty") > 5.0)
            .agg(F.sum("qty").alias("s"), by=["region"])
        )

    _assert_sequences_identical(ctx_on.run(q(ctx_on)),
                                ctx_off.run(q(ctx_off)))
    assert ctx_on.last_trace.by_rule().get("combine-filters", 0) >= 1
    assert ctx_off.last_trace.total_rewrites == 0


def test_multi_subscriber_filter_not_absorbed(catalog):
    """A filter feeding two consumers must stay: absorbing it into one
    chain would change what the other consumer sees."""
    ctx = WakeContext(catalog)
    base = ctx.table("sales").filter(col("qty") > 5.0)
    left = base.filter(col("qty") < 40.0).agg(F.count().alias("a"))
    right = base.agg(F.count().alias("b"))
    q = left.cross_join(right)
    graph, _out, _trace = _optimized_graph(q)
    assert _count(graph, FilterOperator) == 2


# ---------------------------------------------------------------------------
# aggregate-projection
# ---------------------------------------------------------------------------

def test_aggregate_projection_prunes_unused_outputs(catalog):
    ctx = WakeContext(catalog)
    q = (
        ctx.table("sales")
        .select(region="region", qty="qty",
                wasted=col("qty") * 1000.0)
        .agg(F.sum("qty").alias("s"), by=["region"])
    )
    graph, _out, trace = _optimized_graph(q)
    assert trace.by_rule()["aggregate-projection"] == 1
    (sid,) = [
        nid for nid, node in graph.nodes.items()
        if isinstance(node.operator, SelectOperator)
    ]
    names = [name for name, _ in graph.node(sid).operator.exprs]
    assert names == ["region", "qty"]


def test_aggregate_projection_sequences_byte_identical(catalog):
    ctx_on = WakeContext(catalog)
    ctx_off = WakeContext(catalog, optimize=False, pushdown=False)

    def q(ctx):
        return (
            ctx.table("sales")
            .select(region="region", qty="qty",
                    wasted=col("qty") * 1000.0)
            .agg(F.avg("qty").alias("a"), by=["region"])
        )

    _assert_sequences_identical(ctx_on.run(q(ctx_on)),
                                ctx_off.run(q(ctx_off)))


# ---------------------------------------------------------------------------
# common-subplan
# ---------------------------------------------------------------------------

def _duplicated_chain_query(ctx):
    """Two *separately built* but identical filter→aggregate chains over
    one shared scan, joined — the CSE motivating shape."""
    t = ctx.table("sales")
    left = (
        t.filter(col("qty") > 10.0)
        .agg(F.sum("qty").alias("s"), by=["region"])
    )
    right = (
        t.filter(col("qty") > 10.0)
        .agg(F.sum("qty").alias("s"), by=["region"])
    )
    return left.join(right, on=[("region", "region")])


def test_cse_merges_duplicate_chains(catalog):
    ctx = WakeContext(catalog)
    q = _duplicated_chain_query(ctx)
    graph, _out, trace = _optimized_graph(q)
    # One filter and one aggregate survive; the join reads the merged
    # aggregate on both ports.
    assert _count(graph, FilterOperator) == 1
    assert _count(graph, AggregateOperator) == 1
    assert trace.by_rule()["common-subplan"] >= 2


def test_cse_sequences_byte_identical(catalog):
    ctx_on = WakeContext(catalog)
    ctx_off = WakeContext(catalog, optimize=False, pushdown=False)
    _assert_sequences_identical(
        ctx_on.run(_duplicated_chain_query(ctx_on)),
        ctx_off.run(_duplicated_chain_query(ctx_off)),
    )


def test_cse_distinguishes_different_predicates(catalog):
    ctx = WakeContext(catalog)
    t = ctx.table("sales")
    left = t.filter(col("qty") > 10.0).agg(F.count().alias("a"))
    right = t.filter(col("qty") > 11.0).agg(F.count().alias("b"))
    q = left.cross_join(right)
    graph, _out, trace = _optimized_graph(q)
    assert _count(graph, FilterOperator) == 2
    assert "common-subplan" not in trace.by_rule()


def test_cse_never_merges_separate_scans(catalog):
    """Two table() calls are distinct sources (separate progress
    counters) and must never merge, even though they read one table."""
    ctx = WakeContext(catalog)
    left = ctx.table("sales").filter(col("qty") > 10.0) \
        .agg(F.count().alias("a"))
    right = ctx.table("sales").filter(col("qty") > 10.0) \
        .agg(F.count().alias("b"))
    q = left.cross_join(right)
    graph, _out, trace = _optimized_graph(q)
    assert _count(graph, FilterOperator) == 2
    assert "common-subplan" not in trace.by_rule()


# ---------------------------------------------------------------------------
# escape hatches + trace
# ---------------------------------------------------------------------------

def test_optimize_false_disables_every_rule(catalog):
    ctx = WakeContext(catalog, optimize=False)
    q = _duplicated_chain_query(ctx)
    final_off = ctx.run(q).get_final()
    assert ctx.last_trace.total_rewrites == 0
    assert ctx.last_trace.passes == 0
    final_on = WakeContext(catalog).run(
        _duplicated_chain_query(WakeContext(catalog))
    )
    # Same final answer either way (sanity, beyond the sequence tests).
    assert final_off.n_rows == final_on.get_final().n_rows


def test_per_rule_disable(catalog):
    ctx = WakeContext(catalog, optimizer_disable={"common-subplan"})
    ctx.run(_duplicated_chain_query(ctx), capture_all=False)
    assert "common-subplan" not in ctx.last_trace.by_rule()

    ctx2 = WakeContext(catalog)
    ctx2.run(_duplicated_chain_query(ctx2), capture_all=False)
    assert "common-subplan" in ctx2.last_trace.by_rule()


def test_unknown_rule_name_rejected_eagerly(catalog):
    with pytest.raises(QueryError, match="unknown optimizer rule"):
        WakeContext(catalog, optimizer_disable={"no-such-rule"})
    with pytest.raises(QueryError):
        validate_rule_names({"combine-filters", "typo"})
    assert validate_rule_names(RULE_NAMES) == frozenset(RULE_NAMES)
    assert set(LOGICAL_RULE_NAMES) <= set(RULE_NAMES)


def test_run_level_optimize_override(catalog):
    ctx = WakeContext(catalog)
    ctx.run(_duplicated_chain_query(ctx), capture_all=False,
            optimize=False)
    assert ctx.last_trace.total_rewrites == 0


def test_explain_renders_trace_and_hash(catalog):
    ctx = WakeContext(catalog)
    text = ctx.explain(_duplicated_chain_query(ctx))
    assert "optimizer:" in text
    assert "plan hash=" in text
    assert "common-subplan" in text


def test_optimizer_fixed_point_is_idempotent(catalog):
    """Optimizing an already-optimized plan rewrites nothing logical."""
    ctx = WakeContext(catalog)
    graph = QueryGraph()
    q = _duplicated_chain_query(ctx)
    output = q.plan.materialize(graph, {})
    optimizer = build_optimizer(pushdown=False)
    graph, output, first = optimizer.optimize(graph, output)
    assert first.total_rewrites > 0
    graph, output, second = build_optimizer(pushdown=False).optimize(
        graph, output
    )
    assert second.total_rewrites == 0


def test_optimized_final_values_correct(catalog, sales_frame):
    """Beyond parity: the merged plan computes the right numbers."""
    ctx = WakeContext(catalog)
    final = ctx.run(_duplicated_chain_query(ctx)).get_final()
    qty = sales_frame.column("qty")
    region = sales_frame.column("region")
    for i, r in enumerate(final.column("region")):
        expected = qty[(region == r) & (qty > 10.0)].sum()
        assert np.isclose(final.column("s")[i], expected)
        assert np.isclose(final.column("s_right")[i], expected)
