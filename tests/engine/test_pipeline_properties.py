"""Engine-level property tests: the 2C invariants under arbitrary data
and partitionings (DESIGN.md §6 invariants 1–3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import F, WakeContext, col
from repro.dataframe import AggSpec, DataFrame, group_aggregate
from repro.storage import Catalog, write_table


def build_catalog(tmp_path, rows, rows_per_partition):
    ks, vs = zip(*rows)
    frame = DataFrame(
        {
            "k": np.array(ks, dtype=np.int64),
            "v": np.array(vs, dtype=np.float64),
        }
    )
    catalog = Catalog()
    write_table(catalog, tmp_path, "t", frame,
                rows_per_partition=rows_per_partition,
                primary_key=[])
    return catalog, frame


rows_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.floats(-100, 100)),
    min_size=2, max_size=60,
)


@given(rows=rows_strategy, rpp=st.integers(1, 20))
@settings(max_examples=25, deadline=None)
def test_shuffle_agg_exact_under_any_partitioning(rows, rpp,
                                                  tmp_path_factory):
    """Invariant 1 (convergence): the engine's t=1 grouped aggregate
    equals the one-shot kernel for any table and chunking."""
    tmp_path = tmp_path_factory.mktemp("prop")
    catalog, frame = build_catalog(tmp_path, rows, rpp)
    ctx = WakeContext(catalog)
    plan = ctx.table("t").agg(
        F.sum("v").alias("s"), F.count(None).alias("n"), by=["k"]
    )
    final = ctx.run(plan, capture_all=False).get_final()
    expected = group_aggregate(
        frame, ["k"],
        [AggSpec("sum", "v", "s"), AggSpec("count", None, "n")],
    )
    got = {
        k: (s, n)
        for k, s, n in zip(final.column("k").tolist(),
                           final.column("s").tolist(),
                           final.column("n").tolist())
    }
    for k, s, n in zip(expected.column("k").tolist(),
                       expected.column("s").tolist(),
                       expected.column("n").tolist()):
        assert got[k][0] == pytest.approx(s, rel=1e-9, abs=1e-6)
        assert got[k][1] == pytest.approx(float(n))


@given(rows=rows_strategy, rpp=st.integers(1, 20))
@settings(max_examples=25, deadline=None)
def test_filter_agg_pipeline_exact(rows, rpp, tmp_path_factory):
    """Deep pipeline convergence: filter -> agg -> filter-on-mutable."""
    tmp_path = tmp_path_factory.mktemp("prop2")
    catalog, frame = build_catalog(tmp_path, rows, rpp)
    ctx = WakeContext(catalog)
    plan = (
        ctx.table("t")
        .filter(col("v") > 0)
        .agg(F.sum("v").alias("s"), by=["k"])
        .filter(col("s") > 10)
    )
    final = ctx.run(plan, capture_all=False).get_final()
    kept = frame.mask(frame.column("v") > 0)
    expected = group_aggregate(kept, ["k"], [AggSpec("sum", "v", "s")])
    expected = expected.mask(expected.column("s") > 10)
    got = dict(zip(final.column("k").tolist(),
                   final.column("s").tolist()))
    exp = dict(zip(expected.column("k").tolist(),
                   expected.column("s").tolist()))
    assert set(got) == set(exp)
    for k in exp:
        assert got[k] == pytest.approx(exp[k], rel=1e-9, abs=1e-6)


class TestStatisticalInvariants:
    """Invariants 2–3: unbiasedness and decaying expected error of
    growth-scaled estimates, over random partition arrival orders."""

    N_SEEDS = 24

    @pytest.fixture(scope="class")
    def big_catalog(self, tmp_path_factory):
        rng = np.random.default_rng(123)
        n = 4_000
        frame = DataFrame(
            {
                "g": rng.integers(0, 3, size=n).astype(np.int64),
                "v": rng.normal(50.0, 20.0, size=n),
            }
        )
        catalog = Catalog()
        write_table(catalog, tmp_path_factory.mktemp("stat"), "t",
                    frame, rows_per_partition=250, primary_key=[])
        return catalog, frame

    def collect_errors(self, big_catalog):
        catalog, frame = big_catalog
        exact = float(frame.column("v").sum())
        per_snapshot: list[list[float]] = []
        for seed in range(self.N_SEEDS):
            ctx = WakeContext(catalog, partition_shuffle_seed=seed)
            edf = ctx.run(ctx.table("t").agg(F.sum("v").alias("s")))
            errors = [
                (float(s.frame.column("s")[0]) - exact) / exact
                for s in edf.snapshots
            ]
            per_snapshot.append(errors)
        return np.array(per_snapshot)  # [seed, snapshot]

    def test_unbiased_in_expectation(self, big_catalog):
        errors = self.collect_errors(big_catalog)
        # mean signed relative error across shuffles ~ 0 at every stage
        mean_err = errors.mean(axis=0)
        spread = errors.std(axis=0) / np.sqrt(errors.shape[0])
        for stage in range(errors.shape[1] - 1):
            assert abs(mean_err[stage]) < max(4 * spread[stage], 1e-3), (
                f"stage {stage}: biased estimate "
                f"({mean_err[stage]:.4f} ± {spread[stage]:.4f})"
            )

    def test_expected_error_decays(self, big_catalog):
        errors = np.abs(self.collect_errors(big_catalog))
        mean_abs = errors.mean(axis=0)
        early = mean_abs[:3].mean()
        late = mean_abs[-4:-1].mean()
        assert late < early, (
            f"expected |error| should shrink: early={early:.4f} "
            f"late={late:.4f}"
        )
        assert mean_abs[-1] == pytest.approx(0.0, abs=1e-12)
