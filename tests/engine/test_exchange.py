"""Exchange/union operators and the shard-plan rewrite."""

import numpy as np
import pytest

from repro.dataframe import AggSpec, DataFrame, col, group_aggregate
from repro.core.properties import Delivery, Progress, StreamInfo
from repro.engine import QueryGraph, SyncExecutor
from repro.engine.message import Message
from repro.engine.ops import (
    AggregateOperator,
    ExchangeOperator,
    FilterOperator,
    HashJoinOperator,
    ReadOperator,
    SelectOperator,
    UnionOperator,
)
from repro.engine.ops.exchange import ShardHashCache, shard_assignment
from repro.engine.planner import shard_plan
from repro.errors import QueryError


def run(graph, output, **kwargs):
    return SyncExecutor(graph, output, **kwargs).run()


class TestShardAssignment:
    def test_partition_complete_and_stable(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1000, size=5000).astype(np.int64)
        shards = shard_assignment([keys], 4)
        assert shards.shape == keys.shape
        assert set(np.unique(shards)) <= {0, 1, 2, 3}
        # deterministic, and equal keys always co-locate
        again = shard_assignment([keys], 4)
        np.testing.assert_array_equal(shards, again)
        for value in np.unique(keys)[:50]:
            assert len(set(shards[keys == value])) == 1

    def test_reasonably_balanced(self):
        keys = np.arange(10_000, dtype=np.int64)
        counts = np.bincount(shard_assignment([keys], 4), minlength=4)
        assert counts.min() > 10_000 / 4 * 0.8

    def test_numeric_dtype_agnostic(self):
        # An int64 probe key and a float64 build key with equal values
        # must land on the same shard (join co-partitioning).
        ints = np.array([1, 2, 3, 100], dtype=np.int64)
        floats = ints.astype(np.float64)
        np.testing.assert_array_equal(
            shard_assignment([ints], 8), shard_assignment([floats], 8)
        )

    def test_zero_and_nan_canonicalized(self):
        vals = np.array([0.0, -0.0, np.nan, np.nan])
        shards = shard_assignment([vals], 16)
        assert shards[0] == shards[1]
        assert shards[2] == shards[3]

    def test_string_keys_width_independent(self):
        narrow = np.array(["ab", "cd"])  # <U2
        wide = np.array(["ab", "cd", "longerentry"])[:2]  # <U11 storage
        np.testing.assert_array_equal(
            shard_assignment([narrow], 8), shard_assignment([wide], 8)
        )

    def test_multi_column(self):
        a = np.array([1, 1, 2, 2], dtype=np.int64)
        b = np.array(["x", "y", "x", "y"])
        shards = shard_assignment([a, b], 64)
        # all four key combinations are distinct; with 64 shards at
        # least two must separate (sanity that both columns contribute)
        assert len(set(shards.tolist())) >= 2
        np.testing.assert_array_equal(
            shards, shard_assignment([a, b], 64)
        )

    def test_empty_and_errors(self):
        assert shard_assignment(
            [np.empty(0, dtype=np.int64)], 4
        ).shape == (0,)
        with pytest.raises(QueryError):
            shard_assignment([], 4)


class TestExchangeOperator:
    def _info(self):
        frame = DataFrame({"k": np.arange(4, dtype=np.int64),
                           "v": np.ones(4)})
        return frame, StreamInfo(schema=frame.schema,
                                 delivery=Delivery.DELTA)

    def _message(self, frame, kind=Delivery.DELTA):
        progress = Progress(done={"t": 4}, total={"t": 8})
        return Message(frame=frame, progress=progress, kind=kind)

    def test_ports_partition_the_stream(self):
        frame, info = self._info()
        cache = ShardHashCache(("k",), 3)
        ports = [
            ExchangeOperator(f"ex{i}", ["k"], i, 3, cache=cache)
            for i in range(3)
        ]
        for port in ports:
            port.bind((info,))
        outs = [port.on_message(0, self._message(frame))[0]
                for port in ports]
        total = DataFrame.concat([m.frame for m in outs])
        assert total.n_rows == frame.n_rows
        assert sorted(total.column("k").tolist()) == [0, 1, 2, 3]
        for message in outs:
            assert message.kind == Delivery.DELTA
            assert message.progress.done["t"] == 4

    def test_replace_kind_and_info_pass_through(self):
        frame, info = self._info()
        op = ExchangeOperator("ex", ["k"], 0, 2)
        out_info = op.bind((info,))
        assert out_info.delivery == Delivery.DELTA
        assert out_info.schema is info.schema
        out = op.on_message(
            0, self._message(frame, kind=Delivery.REPLACE)
        )[0]
        assert out.kind == Delivery.REPLACE

    def test_cache_hashes_once_per_frame(self):
        frame, _ = self._info()
        cache = ShardHashCache(("k",), 2)
        first = cache.shards_for(frame)
        assert cache.shards_for(frame) is first

    def test_validation(self):
        frame, info = self._info()
        with pytest.raises(QueryError, match="out of range"):
            ExchangeOperator("ex", ["k"], 2, 2)
        with pytest.raises(QueryError, match="n_shards"):
            ExchangeOperator("ex", ["k"], 0, 0)
        with pytest.raises(QueryError, match="shared cache"):
            ExchangeOperator(
                "ex", ["k"], 0, 2, cache=ShardHashCache(("k",), 3)
            )
        op = ExchangeOperator("ex", ["nope"], 0, 2)
        with pytest.raises(QueryError, match="unknown key"):
            op.bind((info,))


class TestUnionOperator:
    def _replace_info(self, frame):
        return StreamInfo(schema=frame.schema, primary_key=("k",),
                          delivery=Delivery.REPLACE)

    def _msg(self, frame, done, total=16, kind=Delivery.REPLACE):
        return Message(
            frame=frame,
            progress=Progress(done={"t": done}, total={"t": total}),
            kind=kind,
        )

    def test_replace_combine_key_sorted_and_slowest_progress(self):
        a = DataFrame({"k": np.array([3, 1], dtype=np.int64),
                       "s": np.array([30.0, 10.0])})
        b = DataFrame({"k": np.array([2], dtype=np.int64),
                       "s": np.array([20.0])})
        union = UnionOperator("u", 2, sort_keys=("k",))
        union.bind((self._replace_info(a), self._replace_info(b)))
        # port 1 is live but silent: its groups are missing, so no
        # combined snapshot may be emitted yet
        assert union.on_message(0, self._msg(a, done=8)) == []
        second = union.on_message(1, self._msg(b, done=4))[0]
        assert second.kind == Delivery.REPLACE
        assert second.frame.column("k").tolist() == [1, 2, 3]
        assert second.frame.column("s").tolist() == [10.0, 20.0, 30.0]
        # aligned to the slowest shard
        assert second.progress.done["t"] == 4

    def test_final_flush_emits_once(self):
        a = DataFrame({"k": np.array([1], dtype=np.int64),
                       "s": np.array([1.0])})
        union = UnionOperator("u", 2, sort_keys=("k",))
        union.bind((self._replace_info(a), self._replace_info(a)))
        union.on_message(0, self._msg(a, done=16))
        # port 1 never reports; EOFs close the stream
        assert union.on_eof(0) == []
        flush = union.on_eof(1)
        assert len(flush) == 1
        assert flush[0].frame.column("k").tolist() == [1]

    def test_no_duplicate_final_after_complete_combine(self):
        a = DataFrame({"k": np.array([1], dtype=np.int64),
                       "s": np.array([1.0])})
        union = UnionOperator("u", 2, sort_keys=("k",))
        union.bind((self._replace_info(a), self._replace_info(a)))
        union.on_message(0, self._msg(a, done=16))
        out = union.on_message(1, self._msg(a, done=16))
        assert out[0].progress.is_complete
        assert union.on_eof(0) == []
        assert union.on_eof(1) == []  # already sealed

    def test_delta_pass_through(self):
        frame = DataFrame({"k": np.array([1], dtype=np.int64)})
        info = StreamInfo(schema=frame.schema, delivery=Delivery.DELTA)
        union = UnionOperator("u", 2)
        out_info = union.bind((info, info))
        assert out_info.delivery == Delivery.DELTA
        message = self._msg(frame, done=4, kind=Delivery.DELTA)
        assert union.on_message(1, message) == [message]
        assert union.on_eof(0) == []
        assert union.on_eof(1) == []

    def test_mixed_delivery_rejected(self):
        frame = DataFrame({"k": np.array([1], dtype=np.int64)})
        delta = StreamInfo(schema=frame.schema, delivery=Delivery.DELTA)
        replace = StreamInfo(schema=frame.schema,
                             delivery=Delivery.REPLACE)
        with pytest.raises(QueryError, match="mixed"):
            UnionOperator("u", 2).bind((delta, replace))

    def test_schema_mismatch_rejected(self):
        a = DataFrame({"k": np.array([1], dtype=np.int64)})
        b = DataFrame({"x": np.array([1.5])})
        with pytest.raises(QueryError, match="schemas differ"):
            UnionOperator("u", 2).bind((
                StreamInfo(schema=a.schema, delivery=Delivery.REPLACE),
                StreamInfo(schema=b.schema, delivery=Delivery.REPLACE),
            ))


def _agg_graph(catalog):
    """sales shuffle aggregate: sum(qty) by cust (non-clustered key)."""
    graph = QueryGraph()
    read = graph.add(ReadOperator(catalog.table("sales")))
    agg = graph.add(
        AggregateOperator("agg", [AggSpec("sum", "qty", "s")],
                          by=["cust"]),
        (read,),
    )
    return graph, agg


class TestShardPlan:
    def test_parallelism_one_is_identity(self, catalog):
        graph, agg = _agg_graph(catalog)
        new, output = shard_plan(graph, agg, 1)
        assert new is graph and output == agg

    def test_no_shardable_nodes_is_identity(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        filt = graph.add(
            FilterOperator("f", col("qty") > 0), (read,)
        )
        new, output = shard_plan(graph, filt, 4)
        assert new is graph and output == filt

    def test_direct_agg_sharding_structure(self, catalog):
        graph, agg = _agg_graph(catalog)
        new, output = shard_plan(graph, agg, 3)
        ops = [node.operator for node in new.nodes.values()]
        assert sum(isinstance(o, ExchangeOperator) for o in ops) == 3
        assert sum(isinstance(o, AggregateOperator) for o in ops) == 3
        assert sum(isinstance(o, UnionOperator) for o in ops) == 1
        assert isinstance(new.node(output).operator, UnionOperator)
        # downstream-visible info matches the unsharded operator's
        infos = new.resolve()
        assert infos[output].delivery == Delivery.REPLACE
        assert infos[output].primary_key == ("cust",)

    def test_sharded_final_byte_identical(self, catalog, sales_frame):
        graph, agg = _agg_graph(catalog)
        base = run(graph, agg).get_final()
        graph2, agg2 = _agg_graph(catalog)
        new, output = shard_plan(graph2, agg2, 4)
        sharded = run(new, output).get_final()
        assert tuple(base.column_names) == tuple(sharded.column_names)
        for name in base.column_names:
            assert (base.column(name).tobytes()
                    == sharded.column(name).tobytes()), name
        expected = group_aggregate(
            sales_frame, ["cust"], [AggSpec("sum", "qty", "s")]
        )
        assert sorted(sharded.column("cust").tolist()) == sorted(
            expected.column("cust").tolist()
        )

    def _join_agg_graph(self, catalog):
        """Group by the join key over a hash join: the fusable shape."""
        graph = QueryGraph()
        sales = graph.add(ReadOperator(catalog.table("sales")))
        cust = graph.add(ReadOperator(catalog.table("customers")))
        join = graph.add(
            HashJoinOperator("j", ["cust"], ["ckey"]), (sales, cust)
        )
        sel = graph.add(
            SelectOperator(
                "sel", [("cust", col("cust")), ("qty", col("qty"))]
            ),
            (join,),
        )
        agg = graph.add(
            AggregateOperator("agg", [AggSpec("sum", "qty", "s")],
                              by=["cust"]),
            (sel,),
        )
        return graph, agg

    def test_fused_join_sharding(self, catalog, sales_frame,
                                 customers_frame):
        graph, agg = self._join_agg_graph(catalog)
        base = run(graph, agg).get_final()

        graph2, agg2 = self._join_agg_graph(catalog)
        new, output = shard_plan(graph2, agg2, 3)
        ops = [node.operator for node in new.nodes.values()]
        # both join inputs exchanged per shard + replicated join chain
        assert sum(isinstance(o, ExchangeOperator) for o in ops) == 6
        assert sum(isinstance(o, HashJoinOperator) for o in ops) == 3
        assert sum(isinstance(o, SelectOperator) for o in ops) == 3
        assert sum(isinstance(o, AggregateOperator) for o in ops) == 3
        sharded = run(new, output).get_final()
        for name in base.column_names:
            assert (base.column(name).tobytes()
                    == sharded.column(name).tobytes()), name

    def test_unaligned_join_not_fused(self, catalog):
        """Group keys disjoint from join keys: exchange sits on the
        aggregate input; the join stays a single shard."""
        graph = QueryGraph()
        sales = graph.add(ReadOperator(catalog.table("sales")))
        cust = graph.add(ReadOperator(catalog.table("customers")))
        join = graph.add(
            HashJoinOperator("j", ["cust"], ["ckey"]), (sales, cust)
        )
        agg = graph.add(
            AggregateOperator("agg", [AggSpec("sum", "qty", "s")],
                              by=["segment"]),
            (join,),
        )
        base = run(graph, agg).get_final()

        graph2 = QueryGraph()
        sales2 = graph2.add(ReadOperator(catalog.table("sales")))
        cust2 = graph2.add(ReadOperator(catalog.table("customers")))
        join2 = graph2.add(
            HashJoinOperator("j", ["cust"], ["ckey"]), (sales2, cust2)
        )
        agg2 = graph2.add(
            AggregateOperator("agg", [AggSpec("sum", "qty", "s")],
                              by=["segment"]),
            (join2,),
        )
        new, output = shard_plan(graph2, agg2, 2)
        ops = [node.operator for node in new.nodes.values()]
        assert sum(isinstance(o, HashJoinOperator) for o in ops) == 1
        assert sum(isinstance(o, ExchangeOperator) for o in ops) == 2
        sharded = run(new, output).get_final()
        for name in base.column_names:
            assert (base.column(name).tobytes()
                    == sharded.column(name).tobytes()), name

    def test_shared_join_not_fused(self, catalog):
        """A join with two consumers must not be replicated."""
        graph = QueryGraph()
        sales = graph.add(ReadOperator(catalog.table("sales")))
        cust = graph.add(ReadOperator(catalog.table("customers")))
        join = graph.add(
            HashJoinOperator("j", ["cust"], ["ckey"]), (sales, cust)
        )
        agg = graph.add(
            AggregateOperator("agg", [AggSpec("sum", "qty", "s")],
                              by=["cust"]),
            (join,),
        )
        graph.add(
            FilterOperator("f", col("qty") > 0), (join,)
        )
        new, output = shard_plan(graph, agg, 2)
        ops = [node.operator for node in new.nodes.values()]
        # join kept whole; only the aggregate sharded
        assert sum(isinstance(o, HashJoinOperator) for o in ops) == 1
        assert sum(isinstance(o, ExchangeOperator) for o in ops) == 2
        assert any(isinstance(o, FilterOperator) for o in ops)


class TestContextParallelism:
    def test_knob_validation(self, catalog):
        from repro import WakeContext

        with pytest.raises(QueryError, match="parallelism"):
            WakeContext(catalog, parallelism=0)
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").sum("qty", by=["cust"])
        with pytest.raises(QueryError, match="parallelism"):
            ctx.run(plan, parallelism=0)

    def test_default_keeps_snapshot_sequence_identical(self, catalog):
        from repro import WakeContext

        ctx = WakeContext(catalog)
        plan = ctx.table("sales").sum("qty", by=["cust"])
        base = ctx.run(plan)
        explicit = ctx.run(plan, parallelism=1)
        assert len(base) == len(explicit)
        for a, b in zip(base.snapshots, explicit.snapshots):
            assert a.t == b.t
            assert a.frame.equals(b.frame, rtol=0, atol=0)

    def test_session_default_parallelism(self, catalog):
        from repro import WakeContext

        ctx1 = WakeContext(catalog)
        ctx4 = WakeContext(catalog, parallelism=4)
        plan1 = ctx1.table("sales").sum("qty", by=["cust"])
        plan4 = ctx4.table("sales").sum("qty", by=["cust"])
        base = ctx1.run(plan1, capture_all=False).get_final()
        sharded = ctx4.run(plan4, capture_all=False).get_final()
        for name in base.column_names:
            assert (base.column(name).tobytes()
                    == sharded.column(name).tobytes()), name
        assert "union" in ctx4.explain(plan4)

    def test_single_partition_no_false_finality(self, tmp_path):
        """One source partition carries complete progress; the first
        shard's refresh must not masquerade as the final snapshot while
        the other shards' groups are still missing."""
        import numpy as np

        from repro import WakeContext
        from repro.dataframe import DataFrame
        from repro.storage import Catalog, write_table

        frame = DataFrame({
            "okey": np.arange(8, dtype=np.int64),
            "g": np.arange(8, dtype=np.int64),
            "v": np.ones(8),
        })
        cat = Catalog(root=str(tmp_path))
        write_table(cat, tmp_path / "t", "t", frame,
                    rows_per_partition=8, primary_key=["okey"])
        ctx = WakeContext(cat)
        plan = ctx.table("t").sum("v", by=["g"])
        edf = ctx.run(plan, parallelism=4)
        finals = [s for s in edf.snapshots if s.progress.is_complete]
        n_groups = 8
        for snapshot in finals:
            assert snapshot.frame.n_rows == n_groups, (
                "snapshot claims completeness but misses groups"
            )
        assert edf.get_final().n_rows == n_groups
        # capture_all=False keeps (first, final); the first snapshot
        # must not pretend to be exact with missing groups
        small = ctx.run(plan, parallelism=4, capture_all=False)
        first = small.snapshots[0]
        assert (not first.progress.is_complete
                or first.frame.n_rows == n_groups)

    def test_threaded_sharded_run(self, catalog):
        from repro import WakeContext

        ctx = WakeContext(catalog)
        plan = ctx.table("sales").sum("qty", by=["cust"])
        base = ctx.run(plan, capture_all=False).get_final()
        sharded = ctx.run(
            plan, capture_all=False, executor="threads", parallelism=3
        ).get_final()
        for name in base.column_names:
            assert (base.column(name).tobytes()
                    == sharded.column(name).tobytes()), name
