"""StepExecutor: resumable stepping, parity with SyncExecutor, close().

The step executor is the scheduling quantum of the multi-query service;
its contract is that stepping to completion — no matter who interleaves
what between the steps — reproduces the sync engine's snapshot sequence
byte-for-byte.
"""

import pytest

from repro import F, WakeContext, col
from repro.engine import QueryGraph, StepExecutor, SyncExecutor
from repro.engine.ops import ReadOperator
from repro.engine.ops.base import Operator


def assert_sequences_identical(got, expected):
    assert len(got) == len(expected)
    for a, b in zip(got.snapshots, expected.snapshots):
        assert a.sequence == b.sequence
        assert a.t == b.t
        assert dict(a.progress.done) == dict(b.progress.done)
        assert tuple(a.frame.column_names) == tuple(b.frame.column_names)
        for name in a.frame.column_names:
            assert (a.frame.column(name).tobytes()
                    == b.frame.column(name).tobytes())


class TestStepParity:
    def test_agg_plan_matches_sync(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"),
                                      by=["cust"])
        base = ctx.run(plan)
        stepped = ctx.executor_for(plan).run()
        assert_sequences_identical(stepped, base)

    def test_join_plan_drains_build_first(self, catalog):
        """Hash-join build sources drain fully before probe partitions
        stream, exactly like the sync executor."""
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").join(
            ctx.table("customers"), on=[("cust", "ckey")],
            method="hash",
        ).agg(F.count(None).alias("n"), by=["region"])
        base = ctx.run(plan)
        stepped = ctx.executor_for(plan).run()
        assert_sequences_identical(stepped, base)

    def test_empty_result_seals_edf(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").filter(col("qty") > 1e12)
        base = ctx.run(plan)
        stepped = ctx.executor_for(plan).run()
        assert stepped.is_final
        assert_sequences_identical(stepped, base)

    def test_parallelism_and_pushdown_compose(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"),
                                      by=["cust"])
        base = ctx.run(plan, parallelism=4)
        stepped = ctx.executor_for(plan, parallelism=4).run()
        assert_sequences_identical(stepped, base)

    def test_sync_executor_is_step_until_eof(self, catalog):
        """SyncExecutor IS a StepExecutor (the refactor's contract)."""
        assert issubclass(SyncExecutor, StepExecutor)


class TestStepping:
    def _executor(self, catalog, **kwargs):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"),
                                      by=["cust"])
        return ctx.executor_for(plan, **kwargs)

    def test_step_returns_false_after_done(self, catalog):
        executor = self._executor(catalog)
        steps = 0
        while executor.step():
            steps += 1
        assert executor.done
        assert steps == executor.steps
        # sales has 6 partitions + 1 EOF dispatch
        assert steps == 7
        assert not executor.step()
        assert executor.steps == steps

    def test_snapshots_appear_incrementally(self, catalog):
        executor = self._executor(catalog)
        seen = 0
        growth_points = 0
        while executor.step():
            if len(executor.edf) > seen:
                growth_points += 1
                seen = len(executor.edf)
        assert growth_points >= 2  # snapshots arrive across steps
        assert executor.edf.is_final

    def test_edf_accessible_before_first_step(self, catalog):
        executor = self._executor(catalog)
        assert len(executor.edf) == 0

    def test_run_twice_returns_same_edf(self, catalog):
        executor = self._executor(catalog)
        first = executor.run()
        assert executor.run() is first

    def test_record_timeline(self, catalog):
        executor = self._executor(catalog, record_timeline=True)
        executor.run()
        assert len(executor.timeline) > 0


class TestClose:
    def test_close_mid_run_stops_stepping(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"),
                                      by=["cust"])
        executor = ctx.executor_for(plan)
        for _ in range(3):
            assert executor.step()
        snapshots = len(executor.edf)
        executor.close()
        assert executor.closed
        assert not executor.done  # never completed
        assert not executor.step()
        # the snapshots produced so far stay readable
        assert len(executor.edf) == snapshots
        assert not executor.edf.is_final

    def test_close_releases_operator_state(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"),
                                      by=["cust"])
        executor = ctx.executor_for(plan)
        executor.step()
        executor.close()
        assert executor.graph is None

    def test_close_closes_read_streams(self, catalog):
        """The scan generators must actually be closed (their
        GeneratorExit runs), not just dropped."""
        graph = QueryGraph()
        read = ReadOperator(WakeContext(catalog).catalog.table("sales"))
        closed = []
        original = read.stream

        def tracking_stream():
            try:
                yield from original()
            finally:
                closed.append(True)

        read.stream = tracking_stream
        node = graph.add(read)
        executor = StepExecutor(graph, node)
        executor.step()
        assert not closed
        executor.close()
        assert closed == [True]

    def test_close_before_start_is_safe(self, catalog):
        executor = self._fresh(catalog)
        executor.close()
        assert not executor.step()
        assert len(executor.edf) == 0

    def test_close_idempotent(self, catalog):
        executor = self._fresh(catalog)
        executor.step()
        executor.close()
        executor.close()

    def _fresh(self, catalog):
        ctx = WakeContext(catalog)
        return ctx.executor_for(ctx.table("sales").sum("qty"))


class _Exploding(Operator):
    def _derive_info(self, inputs):
        return inputs[0]

    def _handle_message(self, port, message):
        raise RuntimeError("injected step failure")


class TestErrorPropagation:
    def test_step_raises_operator_error(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        boom = graph.add(_Exploding("boom"), (read,))
        executor = StepExecutor(graph, boom)
        with pytest.raises(RuntimeError, match="injected step failure"):
            while executor.step():
                pass
