"""Executor tests: sync/threaded equivalence, deep pipeline end-to-end,
timelines, convergence behaviour."""

import numpy as np
import pytest

from repro.dataframe import (
    AggSpec,
    col,
    group_aggregate,
    hash_join,
    top_k,
)
from repro.engine import QueryGraph, SyncExecutor, ThreadedExecutor
from repro.engine.ops import (
    AggregateOperator,
    FilterOperator,
    HashJoinOperator,
    ReadOperator,
    SortLimitOperator,
)


def section1_pipeline(catalog):
    """The paper's §1 session on the test tables: per-order totals,
    filter large orders, join customer names, total per customer,
    top customers."""
    graph = QueryGraph()
    sales = graph.add(ReadOperator(catalog.table("sales")))
    per_order = graph.add(
        AggregateOperator(
            "order_qty",
            [AggSpec("sum", "qty", "sum_qty"),
             AggSpec("count", None, "items")],
            by=["okey", "cust"],
        ),
        (sales,),
    )
    large = graph.add(
        FilterOperator("lg_orders", col("sum_qty") > 40), (per_order,)
    )
    cust = graph.add(ReadOperator(catalog.table("customers")))
    named = graph.add(
        HashJoinOperator("join_cust", ["cust"], ["ckey"]), (large, cust)
    )
    per_cust = graph.add(
        AggregateOperator(
            "qty_per_cust",
            [AggSpec("sum", "sum_qty", "total_qty")],
            by=["name"],
        ),
        (named,),
    )
    top = graph.add(
        SortLimitOperator(
            "top_cust", by=["total_qty", "name"],
            ascending=[False, True], limit=3,
        ),
        (per_cust,),
    )
    return graph, top


def section1_reference(catalog):
    full = catalog.table("sales").read_all()
    customers = catalog.table("customers").read_all()
    per_order = group_aggregate(
        full, ["okey", "cust"],
        [AggSpec("sum", "qty", "sum_qty"), AggSpec("count", None, "items")],
    )
    large = per_order.mask(per_order.column("sum_qty") > 40)
    named = hash_join(large, customers, ["cust"], ["ckey"])
    per_cust = group_aggregate(
        named, ["name"], [AggSpec("sum", "sum_qty", "total_qty")]
    )
    return top_k(per_cust, ["total_qty", "name"], 3,
                 ascending=[False, True])


class TestDeepPipeline:
    def test_final_answer_matches_reference(self, catalog):
        graph, top = section1_pipeline(catalog)
        edf = SyncExecutor(graph, top).run()
        expected = section1_reference(catalog)
        got = edf.get_final()
        assert got.column("name").tolist() == expected.column(
            "name").tolist()
        np.testing.assert_allclose(
            got.column("total_qty"), expected.column("total_qty")
        )

    def test_intermediate_estimates_appear_early(self, catalog):
        graph, top = section1_pipeline(catalog)
        edf = SyncExecutor(graph, top).run()
        assert len(edf) >= 3  # one refresh per fact partition at least
        assert edf.snapshots[0].t < 0.5

    def test_estimates_converge(self, catalog):
        """Later estimates should not be (much) worse: compare first and
        second-half mean error on the top-customer total."""
        graph, top = section1_pipeline(catalog)
        edf = SyncExecutor(graph, top).run()
        expected = section1_reference(catalog)
        target = expected.column("total_qty")[0]

        def error(snapshot):
            if snapshot.frame.n_rows == 0:
                return 1.0
            return abs(snapshot.frame.column("total_qty")[0] - target) / \
                target

        errors = [error(s) for s in edf.snapshots]
        assert errors[-1] == pytest.approx(0.0, abs=1e-9)


class TestExecutorEquivalence:
    def test_final_frames_identical(self, catalog):
        graph_a, top_a = section1_pipeline(catalog)
        sync_edf = SyncExecutor(graph_a, top_a).run()
        graph_b, top_b = section1_pipeline(catalog)
        threaded_edf = ThreadedExecutor(graph_b, top_b).run()
        assert sync_edf.get_final().equals(threaded_edf.get_final())

    def test_threaded_shuffle_agg(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        agg = graph.add(
            AggregateOperator(
                "a", [AggSpec("sum", "qty", "s")], by=["cust"]
            ),
            (read,),
        )
        edf = ThreadedExecutor(graph, agg).run()
        expected = group_aggregate(
            catalog.table("sales").read_all(), ["cust"],
            [AggSpec("sum", "qty", "s")],
        )
        got = dict(zip(edf.get_final().column("cust").tolist(),
                       edf.get_final().column("s").tolist()))
        exp = dict(zip(expected.column("cust").tolist(),
                       expected.column("s").tolist()))
        assert got == pytest.approx(exp)

    def test_threaded_join(self, catalog, sales_frame, customers_frame):
        graph = QueryGraph()
        sales = graph.add(ReadOperator(catalog.table("sales")))
        cust = graph.add(ReadOperator(catalog.table("customers")))
        join = graph.add(
            HashJoinOperator("j", ["cust"], ["ckey"]), (sales, cust)
        )
        edf = ThreadedExecutor(graph, join).run()
        assert edf.get_final().n_rows == 60


class TestSnapshotMetadata:
    def test_wall_times_monotone(self, catalog):
        graph, top = section1_pipeline(catalog)
        edf = SyncExecutor(graph, top).run()
        times = [s.wall_time for s in edf.snapshots]
        assert times == sorted(times)

    def test_rows_processed_monotone(self, catalog):
        graph, top = section1_pipeline(catalog)
        edf = SyncExecutor(graph, top).run()
        rows = [s.rows_processed for s in edf.snapshots]
        assert rows == sorted(rows)
        assert rows[-1] == 60 + 5  # all sales + all customers

    def test_capture_all_false_keeps_first_and_final(self, catalog):
        graph, top = section1_pipeline(catalog)
        edf = SyncExecutor(graph, top, capture_all=False).run()
        assert len(edf) == 2
        assert edf.snapshots[0].sequence == 0
        assert edf.is_final

    def test_timeline_recorded(self, catalog):
        graph, top = section1_pipeline(catalog)
        executor = SyncExecutor(graph, top, record_timeline=True)
        executor.run()
        names = {event.node for event in executor.timeline}
        assert "order_qty" in names
        assert "top_cust" in names
        for event in executor.timeline:
            assert event.end >= event.start

    def test_threaded_timeline(self, catalog):
        graph, top = section1_pipeline(catalog)
        executor = ThreadedExecutor(graph, top, record_timeline=True)
        executor.run()
        assert len(executor.timeline) > 0


class TestEmptyResults:
    def test_fully_filtered_query_yields_empty_final(self, catalog):
        graph = QueryGraph()
        read = graph.add(ReadOperator(catalog.table("sales")))
        filt = graph.add(
            FilterOperator("f", col("qty") > 1e9), (read,)
        )
        agg = graph.add(
            AggregateOperator("a", [AggSpec("sum", "qty", "s")],
                              by=["cust"]),
            (filt,),
        )
        edf = SyncExecutor(graph, agg).run()
        assert edf.is_final
        assert edf.get_final().n_rows == 0
