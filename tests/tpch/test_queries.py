"""Equivalence tests: for every TPC-H query, Wake's t=1 answer equals the
exact reference implementation (the 2C convergence property end-to-end).

Parameters are spec defaults except where laptop-scale SFs would make the
result degenerate (marked per query below).
"""

import pytest

from repro.tpch.queries import QUERIES
from tests.tpch.utils import assert_frames_close

#: Per-query parameter overrides for SF 0.005 (documented deviations).
OVERRIDES: dict[int, dict] = {
    11: {"fraction": 0.005},
    18: {"threshold": 150},  # spec 300 is empty below ~SF 0.02
}

#: Queries whose results must be non-empty at SF 0.005 (meaningfulness
#: check; the remainder may legitimately return few/no rows at tiny SF).
NON_EMPTY = {1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 18,
             21, 22}


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_wake_final_equals_reference(number, tpch_ctx, tpch_tables):
    query = QUERIES[number]
    overrides = OVERRIDES.get(number, {})
    expected = query.run_reference(tpch_tables.tables, **overrides)
    plan = query.build_plan(tpch_ctx, **overrides)
    edf = tpch_ctx.run(plan, capture_all=False)
    got = edf.get_final()
    assert_frames_close(got, expected)
    if number in NON_EMPTY:
        assert got.n_rows > 0, f"q{number:02d} unexpectedly empty"


@pytest.mark.parametrize("number", [1, 6, 18])
def test_wake_produces_early_estimates(number, tpch_ctx):
    """First estimates arrive well before full progress."""
    query = QUERIES[number]
    plan = query.build_plan(tpch_ctx, **OVERRIDES.get(number, {}))
    edf = tpch_ctx.run(plan)
    assert len(edf) >= 2
    assert edf.snapshots[0].t < 0.75


def test_registry_complete():
    assert sorted(QUERIES) == list(range(1, 23))
    for number, query in QUERIES.items():
        assert query.name == f"q{number:02d}"
        assert query.category in ("mape", "recall", "mixed")
