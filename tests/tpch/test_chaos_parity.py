"""Chaos parity: TPC-H under injected faults.

The fault-tolerance contract is exact, not approximate: a query that
recovers from transient partition-read failures must produce the
**byte-identical snapshot sequence** of a fault-free run (same
snapshots, same progress, same column bytes — retried partitions are
read once, never skipped, never double-counted).  Skip-and-degrade mode
is equally exact: the degraded final equals the fault-free final over
the catalog *minus precisely the quarantined partitions*.
"""

import dataclasses

import pytest

from repro import WakeContext
from repro.service import FairShareScheduler, RetryPolicy, SessionState
from repro.storage import Catalog
from repro.testing import FaultInjector
from repro.tpch.queries import QUERIES
from tests.tpch.utils import assert_sequences_byte_identical

#: A scan-heavy spread: aggregate (1), join pipeline (3), selective
#: filter + pruning (6), join + conditional aggregate (14).
CHAOS_QUERIES = [1, 3, 6, 14]

#: Millisecond backoff so retries don't slow the blocking tier.
POLICY = RetryPolicy(max_attempts=4, backoff_base=0.0005,
                     backoff_max=0.002)


def _plan(ctx, number):
    return QUERIES[number].build_plan(ctx)


@pytest.fixture(scope="module")
def baselines(tpch):
    catalog, _tables = tpch
    out = {}
    for number in CHAOS_QUERIES:
        ctx = WakeContext(catalog)
        out[number] = ctx.run(_plan(ctx, number))
    return out


@pytest.mark.parametrize("number", CHAOS_QUERIES)
def test_transient_chaos_is_byte_identical(number, tpch, baselines):
    catalog, _tables = tpch
    injector = FaultInjector(seed=number, transient_rate=0.3,
                            fault_times=2)
    injector.plan_fault("lineitem", 0, times=2)  # ≥1 fault guaranteed
    ctx = WakeContext(injector.wrap_catalog(catalog))
    scheduler = FairShareScheduler(retry=POLICY)
    session = scheduler.submit(
        ctx.executor_for(_plan(ctx, number)), name=f"q{number:02d}"
    )
    scheduler.run_until_idle()
    assert injector.injected, "chaos test injected no faults"
    assert session.state is SessionState.DONE
    assert session.retries_used >= 2
    assert session.degraded() is None
    assert_sequences_byte_identical(
        session.executor.edf, baselines[number],
        f"q{number:02d} under chaos",
    )


def test_concurrent_chaos_sessions_stay_byte_identical(tpch, baselines):
    """Two faulting queries time-sliced through one scheduler: each
    retries independently and both match their fault-free baselines."""
    catalog, _tables = tpch
    scheduler = FairShareScheduler(retry=POLICY)
    sessions = {}
    for number in (1, 6):
        injector = FaultInjector(seed=100 + number, transient_rate=0.4,
                                 fault_times=2)
        injector.plan_fault("lineitem", 1, times=2)
        ctx = WakeContext(injector.wrap_catalog(catalog))
        sessions[number] = scheduler.submit(
            ctx.executor_for(_plan(ctx, number)), name=f"q{number}"
        )
    scheduler.run_until_idle()
    for number, session in sessions.items():
        assert session.state is SessionState.DONE
        assert_sequences_byte_identical(
            session.executor.edf, baselines[number],
            f"q{number:02d} concurrent chaos",
        )


def _without_partitions(catalog, table, skipped):
    meta = catalog.table(table)
    keep = [i for i in range(meta.n_partitions) if i not in skipped]
    reduced = dataclasses.replace(
        meta,
        files=tuple(meta.files[i] for i in keep),
        tuple_counts=tuple(meta.tuple_counts[i] for i in keep),
        stats=(tuple(meta.stats[i] for i in keep)
               if meta.stats is not None else None),
    )
    tables = dict(catalog.tables)
    tables[table] = reduced
    return Catalog(tables=tables, root=catalog.root)


def test_skip_mode_degraded_final_is_exact_minus_quarantined(tpch):
    """Skip-and-degrade on q06: permanent faults on two lineitem
    partitions quarantine them; the degraded final equals the fault-free
    final computed over the catalog without exactly those partitions."""
    catalog, _tables = tpch
    skipped = {2, 5}
    injector = FaultInjector()
    for index in skipped:
        injector.plan_fault("lineitem", index, kind="permanent")
    policy = RetryPolicy(max_attempts=1, backoff_base=0.0,
                         on_partition_error="skip")
    ctx = WakeContext(injector.wrap_catalog(catalog))
    scheduler = FairShareScheduler(retry=policy)
    session = scheduler.submit(ctx.executor_for(_plan(ctx, 6)),
                               name="q06-degraded")
    scheduler.run_until_idle()
    assert session.state is SessionState.DONE
    degraded = session.degraded()
    assert degraded is not None
    meta = catalog.table("lineitem")
    assert degraded["rows_lost"] == sum(
        meta.tuple_counts[i] for i in skipped
    )
    assert {p["index"] for p in degraded["partitions"]} == skipped
    reduced_ctx = WakeContext(
        _without_partitions(catalog, "lineitem", skipped)
    )
    expected = reduced_ctx.run(_plan(reduced_ctx, 6)).get_final()
    got = session.executor.edf.get_final()
    assert tuple(got.column_names) == tuple(expected.column_names)
    for name in expected.column_names:
        assert (got.column(name).tobytes()
                == expected.column(name).tobytes()), (
            f"degraded q06 column {name!r} != reduced-catalog run"
        )
