"""Plan-level classification tests: the §2.2 case analysis applied to the
TPC-H plans must match the paper's Fig-8 query categories."""

import pytest

from repro.core.properties import Delivery
from repro.engine.graph import QueryGraph
from repro.engine.ops import AggregateOperator, MergeJoinOperator
from repro.tpch.queries import QUERIES


def materialize(tpch_ctx, number, **overrides):
    plan = QUERIES[number].build_plan(tpch_ctx, **overrides)
    graph = QueryGraph()
    output = plan.plan.materialize(graph, {})
    graph.resolve()
    return graph, output


def aggregates(graph):
    return [
        node.operator
        for node in graph.nodes.values()
        if isinstance(node.operator, AggregateOperator)
    ]


class TestCategoryRecall:
    """'recall' queries aggregate on (supersets of) the clustering key:
    their final aggregation must plan as Case-1 local mode."""

    def test_q18_aggregations_are_local(self, tpch_ctx):
        graph, _ = materialize(tpch_ctx, 18, threshold=150)
        aggs = aggregates(graph)
        assert aggs, "q18 must contain aggregations"
        assert all(op.local_mode for op in aggs), (
            "both q18 aggregations group on the order key and must "
            "stream exact DELTA output (Fig 6)"
        )

    def test_q03_final_agg_is_local(self, tpch_ctx):
        graph, output = materialize(tpch_ctx, 3)
        aggs = aggregates(graph)
        assert any(op.local_mode for op in aggs)

    def test_q18_uses_merge_join(self, tpch_ctx):
        graph, _ = materialize(tpch_ctx, 18, threshold=150)
        assert any(
            isinstance(node.operator, MergeJoinOperator)
            for node in graph.nodes.values()
        ), "q18's orders join must pick the progressive merge join"


class TestCategoryMape:
    """'mape' queries shuffle: their aggregations emit REPLACE
    estimates with mutable attributes."""

    @pytest.mark.parametrize("number", [1, 6, 14])
    def test_shuffle_aggregation(self, tpch_ctx, number):
        graph, output = materialize(tpch_ctx, number)
        aggs = aggregates(graph)
        assert aggs
        assert any(not op.local_mode for op in aggs)
        shuffles = [op for op in aggs if not op.local_mode]
        for op in shuffles:
            assert op.output_info.delivery == Delivery.REPLACE
            mutable = op.output_info.schema.mutable_names
            assert mutable, "shuffle aggregates emit mutable attrs"


class TestDeliveryAtOutput:
    @pytest.mark.parametrize("number", sorted(QUERIES))
    def test_sorted_outputs_are_replace(self, tpch_ctx, number):
        """Every query ends in an ORDER BY (Case 3): the output stream
        must be REPLACE snapshots."""
        overrides = {11: {"fraction": 0.005},
                     18: {"threshold": 150}}.get(number, {})
        graph, output = materialize(tpch_ctx, number, **overrides)
        info = graph.resolve()[output]
        assert info.delivery == Delivery.REPLACE
