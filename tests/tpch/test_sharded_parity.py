"""Sharded vs unsharded parity on the TPC-H suite.

The shard rewrite masks rows — it never re-batches them — so every
per-shard accumulation sequence is bit-identical to the unsharded
operator's and the union's key-sorted concat of exact finals must be
*byte*-identical to the unsharded final, for every query.
"""

import pytest
from repro.tpch.queries import QUERIES

#: Same laptop-scale parameter overrides as test_queries.py.
OVERRIDES = {11: {"fraction": 0.005}, 18: {"threshold": 150}}


def assert_frames_byte_identical(got, expected):
    assert tuple(got.column_names) == tuple(expected.column_names)
    assert got.n_rows == expected.n_rows
    for name in expected.column_names:
        assert (got.column(name).tobytes()
                == expected.column(name).tobytes()), (
            f"column {name!r} drifted under sharding"
        )


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_sharded_final_byte_identical(number, tpch_ctx):
    query = QUERIES[number]
    overrides = OVERRIDES.get(number, {})
    base = tpch_ctx.run(
        query.build_plan(tpch_ctx, **overrides), capture_all=False
    ).get_final()
    sharded = tpch_ctx.run(
        query.build_plan(tpch_ctx, **overrides), capture_all=False,
        parallelism=4,
    ).get_final()
    assert_frames_byte_identical(sharded, base)


@pytest.mark.parametrize("number", [1, 10, 16])
def test_parallelism_one_keeps_snapshot_sequence(number, tpch_ctx):
    """The default (and explicit parallelism=1) must not perturb plans:
    snapshot sequences are byte-identical to the unsharded engine."""
    query = QUERIES[number]
    plan = query.build_plan(tpch_ctx)
    base = tpch_ctx.run(plan)
    explicit = tpch_ctx.run(plan, parallelism=1)
    assert len(base) == len(explicit)
    for a, b in zip(base.snapshots, explicit.snapshots):
        assert a.sequence == b.sequence
        assert a.progress.done == b.progress.done
        assert_frames_byte_identical(b.frame, a.frame)


@pytest.mark.slow
@pytest.mark.parametrize("number", [1, 13, 16])
def test_threaded_sharded_finals(number, tpch_ctx):
    """Sharded plans on the threaded executor (every replica on its own
    thread, bounded channels) still converge to the same exact final."""
    query = QUERIES[number]
    base = tpch_ctx.run(
        query.build_plan(tpch_ctx), capture_all=False
    ).get_final()
    sharded = tpch_ctx.run(
        query.build_plan(tpch_ctx), capture_all=False,
        executor="threads", parallelism=4,
    ).get_final()
    assert_frames_byte_identical(sharded, base)
