"""Scheduler-driven execution vs ``WakeContext.run()`` on TPC-H.

The StepExecutor's contract is that a query's dispatch order is a
function of its own plan only — however its partition-steps are
interleaved with other queries', every snapshot sequence must be
*byte*-identical to the run-to-completion sync engine's.  These tests
drive every TPC-H query through the fair-share scheduler alone and
four-at-a-time and compare full snapshot sequences (hence also finals)
against ``WakeContext.run()``.
"""

import pytest

from repro import WakeContext
from repro.service import FairShareScheduler, SessionState
from repro.tpch.queries import QUERIES
from tests.tpch.utils import assert_sequences_byte_identical

#: Same laptop-scale parameter overrides as test_queries.py.
OVERRIDES = {11: {"fraction": 0.005}, 18: {"threshold": 150}}

#: Four-at-a-time batches covering every query.
BATCHES = [tuple(range(n, min(n + 4, 23))) for n in range(1, 23, 4)]


def _plan(ctx, number):
    query = QUERIES[number]
    return query.build_plan(ctx, **OVERRIDES.get(number, {}))


@pytest.fixture(scope="module")
def baselines(tpch):
    """``WakeContext.run()`` snapshot sequences for all 22 queries.

    One fresh context per query: scan labels (progress-counter keys)
    depend on how many times a context has scanned each table, so
    plans must be built the same way on both sides of the comparison.
    """
    catalog, _tables = tpch
    out = {}
    for number in sorted(QUERIES):
        ctx = WakeContext(catalog)
        out[number] = ctx.run(_plan(ctx, number))
    return out


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_scheduler_solo_parity(number, tpch, baselines):
    catalog, _tables = tpch
    ctx = WakeContext(catalog)
    scheduler = FairShareScheduler()
    session = scheduler.submit(
        ctx.executor_for(_plan(ctx, number)), name=f"q{number:02d}"
    )
    scheduler.run_until_idle()
    assert session.state is SessionState.DONE
    assert_sequences_byte_identical(
        session.executor.edf, baselines[number], f"q{number:02d} solo"
    )


@pytest.mark.parametrize("batch", BATCHES,
                         ids=lambda b: "q" + "-".join(map(str, b)))
def test_scheduler_concurrent_parity(batch, tpch, baselines):
    """Four queries time-sliced through one scheduler each still match
    their solo ``run()`` snapshot-for-snapshot."""
    catalog, _tables = tpch
    scheduler = FairShareScheduler()
    sessions = {}
    for number in batch:
        ctx = WakeContext(catalog)
        sessions[number] = scheduler.submit(
            ctx.executor_for(_plan(ctx, number)),
            name=f"q{number:02d}",
            priority=1.0 + 0.5 * (number % 3),  # uneven shares
        )
    scheduler.run_until_idle()
    for number, session in sessions.items():
        assert session.state is SessionState.DONE
        assert_sequences_byte_identical(
            session.executor.edf, baselines[number],
            f"q{number:02d} concurrent",
        )


@pytest.mark.parametrize("number", [1, 3, 6])
def test_scheduler_composes_with_sharding_and_pushdown(number, tpch,
                                                       baselines):
    """parallelism=4 + pushdown under the scheduler still produces the
    byte-identical final (the scheduler drives the rewritten plan)."""
    catalog, _tables = tpch
    ctx = WakeContext(catalog)
    scheduler = FairShareScheduler()
    session = scheduler.submit(
        ctx.executor_for(_plan(ctx, number), parallelism=4),
        name=f"q{number:02d}@4",
    )
    scheduler.run_until_idle()
    got = session.executor.edf.get_final()
    expected = baselines[number].get_final()
    assert tuple(got.column_names) == tuple(expected.column_names)
    for name in expected.column_names:
        assert (got.column(name).tobytes()
                == expected.column(name).tobytes())


@pytest.mark.slow
@pytest.mark.parametrize("number", sorted(QUERIES))
def test_scheduler_sharded_parity_full_suite(number, tpch, baselines):
    """All 22 queries at parallelism=4 under the scheduler (slow tier)."""
    catalog, _tables = tpch
    ctx = WakeContext(catalog)
    scheduler = FairShareScheduler()
    session = scheduler.submit(
        ctx.executor_for(_plan(ctx, number), parallelism=4)
    )
    scheduler.run_until_idle()
    got = session.executor.edf.get_final()
    expected = baselines[number].get_final()
    for name in expected.column_names:
        assert (got.column(name).tobytes()
                == expected.column(name).tobytes())
