"""Scan sharing + the result cache vs plain execution on TPC-H.

The multi-query optimizations must be invisible in the output: with
scan-share on (solo and four-at-a-time through one shared pool) every
query's snapshot sequence stays byte-identical to ``WakeContext.run()``,
and a result-cache attach replays the primary's snapshots verbatim —
including under ``parallelism=4`` and under seeded transient faults
where a quarantined partition degrades *every* attached subscriber
consistently.
"""

import pytest

from repro import ExecutionOptions, WakeContext
from repro.service import (
    AttachedSession,
    FairShareScheduler,
    QueryService,
    RetryPolicy,
    ScanShareManager,
    SessionState,
)
from repro.testing.faults import FaultInjector
from repro.tpch.queries import QUERIES
from tests.tpch.utils import assert_sequences_byte_identical

#: Same laptop-scale parameter overrides as test_queries.py.
OVERRIDES = {11: {"fraction": 0.005}, 18: {"threshold": 150}}

#: Four-at-a-time batches covering every query.
BATCHES = [tuple(range(n, min(n + 4, 23))) for n in range(1, 23, 4)]


def _plan(ctx, number):
    query = QUERIES[number]
    return query.build_plan(ctx, **OVERRIDES.get(number, {}))


class _Seq:
    """Adapt a snapshot list to assert_sequences_byte_identical's edf
    interface (len + .snapshots)."""

    def __init__(self, snapshots):
        self.snapshots = list(snapshots)

    def __len__(self):
        return len(self.snapshots)


@pytest.fixture(scope="module")
def baselines(tpch):
    """``WakeContext.run()`` snapshot sequences for all 22 queries,
    no sharing, no cache — one fresh context per query (scan labels
    depend on per-context scan counts)."""
    catalog, _tables = tpch
    out = {}
    for number in sorted(QUERIES):
        ctx = WakeContext(catalog)
        out[number] = ctx.run(_plan(ctx, number))
    return out


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_scan_share_solo_parity(number, tpch, baselines):
    """A lone subscriber routed through the share pool is still
    byte-identical (every fetch takes the manager path)."""
    catalog, _tables = tpch
    ctx = WakeContext(catalog)
    scheduler = FairShareScheduler()
    executor = ctx.executor_for(_plan(ctx, number))
    executor.scan_share = ScanShareManager()
    session = scheduler.submit(executor, name=f"q{number:02d}")
    scheduler.run_until_idle()
    assert session.state is SessionState.DONE
    assert_sequences_byte_identical(
        session.executor.edf, baselines[number],
        f"q{number:02d} scan-share solo",
    )


@pytest.mark.parametrize("batch", BATCHES,
                         ids=lambda b: "q" + "-".join(map(str, b)))
def test_scan_share_concurrent_parity(batch, tpch, baselines):
    """Four queries time-sliced over ONE share pool: each sequence is
    byte-identical to its solo run, however the pool interleaves and
    fans out the physical reads."""
    catalog, _tables = tpch
    scheduler = FairShareScheduler()
    manager = ScanShareManager()
    sessions = {}
    for number in batch:
        ctx = WakeContext(catalog)
        executor = ctx.executor_for(_plan(ctx, number))
        executor.scan_share = manager
        sessions[number] = scheduler.submit(
            executor, name=f"q{number:02d}",
            priority=1.0 + 0.5 * (number % 3),  # uneven shares
        )
    scheduler.run_until_idle()
    for number, session in sessions.items():
        assert session.state is SessionState.DONE
        assert_sequences_byte_identical(
            session.executor.edf, baselines[number],
            f"q{number:02d} scan-share concurrent",
        )
    stats = manager.stats()
    assert stats["subscribers"] == 0  # every stream closed its share
    assert stats["entries"] == 0  # refcounts drained the pool


def test_identical_queries_share_most_reads(tpch):
    """8 copies of q06 through one pool: all but the cold-start reads
    are served from the pool (the bench guard enforces the wall-clock
    side of this; here we pin the counter semantics)."""
    catalog, _tables = tpch
    scheduler = FairShareScheduler()
    manager = ScanShareManager()
    sessions = []
    for i in range(8):
        ctx = WakeContext(catalog)
        executor = ctx.executor_for(_plan(ctx, 6))
        executor.scan_share = manager
        sessions.append(scheduler.submit(executor, name=f"copy{i}"))
    scheduler.run_until_idle()
    assert all(s.state is SessionState.DONE for s in sessions)
    stats = manager.stats()
    total_fetches = stats["physical_reads"] + stats["shared_hits"]
    # 8 identical scans: far more fetches served from the pool than
    # paid for physically (lazy subscription costs a few cold reads).
    assert stats["shared_hits"] > stats["physical_reads"]
    assert stats["physical_reads"] < total_fetches / 2
    finals = [s.executor.edf.get_final() for s in sessions]
    for final in finals[1:]:
        for name in finals[0].column_names:
            assert (final.column(name).tobytes()
                    == finals[0].column(name).tobytes())


@pytest.mark.parametrize("number", [1, 6, 12])
def test_result_cache_attach_parity(number, tpch, baselines):
    """Mid-flight duplicates attach and replay byte-identically: one
    execution serves three submits."""
    catalog, _tables = tpch
    ctx = WakeContext(
        catalog,
        options=ExecutionOptions(scan_share=True, result_cache=True),
    )
    service = QueryService(ctx)
    params = OVERRIDES.get(number)
    primary = service.submit(f"q{number:02d}", params=params)
    for _ in range(3):
        service.scheduler.run_once()
    attached = [service.submit(f"q{number:02d}", params=params)
                for _ in range(2)]
    assert all(isinstance(a, AttachedSession) for a in attached)
    while service.scheduler.run_once() is not None:
        pass
    assert primary.state is SessionState.DONE
    assert_sequences_byte_identical(
        primary.executor.edf, baselines[number],
        f"q{number:02d} cache primary",
    )
    for i, session in enumerate(attached):
        assert session.state is SessionState.DONE
        assert_sequences_byte_identical(
            _Seq(session.buffer.retained()), baselines[number],
            f"q{number:02d} cache attach #{i}",
        )
    assert service.cache_stats()["hits"] == 2


@pytest.mark.parametrize("number", [1, 3, 6])
def test_attach_under_parallelism4(number, tpch, baselines):
    """Sharded submits (parallelism=4) attach too, and the replayed
    final matches the unsharded baseline's bytes."""
    catalog, _tables = tpch
    ctx = WakeContext(
        catalog,
        options=ExecutionOptions(scan_share=True, result_cache=True),
    )
    service = QueryService(ctx)
    params = OVERRIDES.get(number)
    primary = service.submit(f"q{number:02d}", params=params,
                             parallelism=4)
    service.scheduler.run_once()
    attached = service.submit(f"q{number:02d}", params=params,
                              parallelism=4)
    assert isinstance(attached, AttachedSession)
    while service.scheduler.run_once() is not None:
        pass
    assert primary.state is SessionState.DONE
    assert attached.state is SessionState.DONE
    got = attached.buffer.retained()[-1].frame
    expected = baselines[number].get_final()
    assert tuple(got.column_names) == tuple(expected.column_names)
    for name in expected.column_names:
        assert (got.column(name).tobytes()
                == expected.column(name).tobytes())


def test_quarantine_degrades_all_attached_consistently(tpch):
    """Satellite 3's fault case: seeded transient faults exhaust the
    retry budget on one lineitem partition; skip-and-degrade
    quarantines it in the primary, and every attached subscriber sees
    the *same* degraded answer and the same degraded report."""
    catalog, _tables = tpch
    injector = FaultInjector(seed=5)
    injector.plan_fault("lineitem", 3, "transient", times=8)
    faulty = injector.wrap_catalog(catalog)
    ctx = WakeContext(
        faulty,
        options=ExecutionOptions(scan_share=True, result_cache=True),
    )
    retry = RetryPolicy(max_attempts=2, backoff_base=0.001,
                        backoff_max=0.002,
                        on_partition_error="skip")
    service = QueryService(ctx, retry=retry)
    primary = service.submit("q06")
    service.scheduler.run_once()
    attached = service.submit("q06")
    assert isinstance(attached, AttachedSession)
    # run_until_idle (not a run_once loop): it waits out the retry
    # backoff a cooling session parks in.
    service.scheduler.run_until_idle()
    assert primary.state is SessionState.DONE
    assert attached.state is SessionState.DONE
    degraded = primary.degraded()
    assert degraded is not None and degraded["rows_lost"] > 0
    assert any(p["table"] == "lineitem" and p["index"] == 3
               for p in degraded["partitions"])
    # Degradation is shared state: both report identically, and the
    # attached replay is the primary's snapshots verbatim.
    assert attached.degraded() == degraded
    assert attached.status()["degraded"] == \
        primary.status()["degraded"]
    got = attached.buffer.retained()
    expected = primary.buffer.retained()
    assert len(got) == len(expected) > 0
    assert all(a is b for a, b in zip(got, expected))
