"""Comparison helpers for TPC-H query equivalence tests."""

import numpy as np

from repro.dataframe import DataFrame


def assert_frames_close(
    got: DataFrame,
    expected: DataFrame,
    rtol: float = 1e-6,
    atol: float = 1e-8,
) -> None:
    """Assert two sorted query outputs are equal: same columns (by name),
    same row count, numerics compared with tolerance, strings exactly."""
    assert tuple(got.column_names) == tuple(expected.column_names), (
        f"column mismatch: {got.column_names} vs "
        f"{expected.column_names}"
    )
    assert got.n_rows == expected.n_rows, (
        f"row count mismatch: {got.n_rows} vs {expected.n_rows}"
    )
    for name in expected.column_names:
        a, b = got.column(name), expected.column(name)
        if a.dtype.kind in "if" or b.dtype.kind in "if":
            np.testing.assert_allclose(
                a.astype(np.float64), b.astype(np.float64),
                rtol=rtol, atol=atol, equal_nan=True,
                err_msg=f"column {name!r} differs",
            )
        else:
            assert a.tolist() == b.tolist(), f"column {name!r} differs"


def assert_sequences_byte_identical(got, expected, label):
    """Assert two edf snapshot sequences match snapshot-for-snapshot,
    byte-for-byte (sequence numbers, t, progress, and column bytes)."""
    assert len(got) == len(expected), (
        f"{label}: {len(got)} snapshots vs {len(expected)}"
    )
    for a, b in zip(got.snapshots, expected.snapshots):
        assert a.sequence == b.sequence, label
        assert a.t == b.t, label
        assert dict(a.progress.done) == dict(b.progress.done), label
        assert tuple(a.frame.column_names) == \
            tuple(b.frame.column_names), label
        for name in a.frame.column_names:
            assert (a.frame.column(name).tobytes()
                    == b.frame.column(name).tobytes()), (
                f"{label}: column {name!r} drifted"
            )
