"""Comparison helpers for TPC-H query equivalence tests."""

import numpy as np

from repro.dataframe import DataFrame


def assert_frames_close(
    got: DataFrame,
    expected: DataFrame,
    rtol: float = 1e-6,
    atol: float = 1e-8,
) -> None:
    """Assert two sorted query outputs are equal: same columns (by name),
    same row count, numerics compared with tolerance, strings exactly."""
    assert tuple(got.column_names) == tuple(expected.column_names), (
        f"column mismatch: {got.column_names} vs "
        f"{expected.column_names}"
    )
    assert got.n_rows == expected.n_rows, (
        f"row count mismatch: {got.n_rows} vs {expected.n_rows}"
    )
    for name in expected.column_names:
        a, b = got.column(name), expected.column(name)
        if a.dtype.kind in "if" or b.dtype.kind in "if":
            np.testing.assert_allclose(
                a.astype(np.float64), b.astype(np.float64),
                rtol=rtol, atol=atol, equal_nan=True,
                err_msg=f"column {name!r} differs",
            )
        else:
            assert a.tolist() == b.tolist(), f"column {name!r} differs"
