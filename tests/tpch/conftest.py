"""TPC-H test fixtures live in the top-level conftest (session-scoped
dataset shared with baseline and bench tests)."""
