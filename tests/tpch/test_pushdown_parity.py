"""Pushdown-on vs pushdown-off parity over the TPC-H suite.

Projection pushdown only removes columns nothing downstream references,
and partition pruning is semantically a filter whose progress is
preserved via empty partials — so for every query the finals must be
*byte*-identical and the snapshot progress sequences identical, with
pushdown composing cleanly with sharded execution (``parallelism=4``).
"""

import pytest

from repro import WakeContext
from repro.tpch.queries import QUERIES

#: Same laptop-scale parameter overrides as test_queries.py.
OVERRIDES = {11: {"fraction": 0.005}, 18: {"threshold": 150}}


def assert_frames_byte_identical(got, expected):
    assert tuple(got.column_names) == tuple(expected.column_names)
    assert got.n_rows == expected.n_rows
    for name in expected.column_names:
        assert (got.column(name).tobytes()
                == expected.column(name).tobytes()), (
            f"column {name!r} drifted under pushdown"
        )


def _final(catalog, number, **run_kwargs):
    ctx = WakeContext(catalog)
    query = QUERIES[number]
    overrides = OVERRIDES.get(number, {})
    return ctx.run(
        query.build_plan(ctx, **overrides), capture_all=False,
        **run_kwargs,
    ).get_final()


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_pushdown_final_byte_identical(number, tpch):
    catalog, _tables = tpch
    pushed = _final(catalog, number)
    baseline = _final(catalog, number, pushdown=False)
    assert_frames_byte_identical(pushed, baseline)


@pytest.mark.parametrize("number", [1, 3, 6])
def test_pushdown_composes_with_sharding(number, tpch):
    """Pushdown + parallelism=4 together still match the plain engine."""
    catalog, _tables = tpch
    sharded = _final(catalog, number, parallelism=4)
    baseline = _final(catalog, number, pushdown=False)
    assert_frames_byte_identical(sharded, baseline)


@pytest.mark.parametrize("number", [1, 3, 6, 12, 14, 19])
def test_pushdown_snapshot_sequences_identical(number, tpch):
    """Progress ``t`` and every captured snapshot frame must not move:
    growth inference sees the exact same evolution under pruning."""
    catalog, _tables = tpch
    query = QUERIES[number]
    overrides = OVERRIDES.get(number, {})
    on_ctx = WakeContext(catalog)
    off_ctx = WakeContext(catalog, pushdown=False)
    seq_on = on_ctx.run(query.build_plan(on_ctx, **overrides))
    seq_off = off_ctx.run(query.build_plan(off_ctx, **overrides))
    assert len(seq_on) == len(seq_off)
    for a, b in zip(seq_on.snapshots, seq_off.snapshots):
        assert dict(a.progress.done) == dict(b.progress.done)
        assert a.t == b.t
        assert_frames_byte_identical(a.frame, b.frame)


@pytest.mark.slow
@pytest.mark.parametrize("number", [3, 6, 10])
def test_threaded_pushdown_finals(number, tpch):
    """Pushed-down scans on the threaded executor (empty pruned partials
    flowing through bounded channels) converge to the same final."""
    catalog, _tables = tpch
    threaded = _final(catalog, number, executor="threads")
    baseline = _final(catalog, number, pushdown=False)
    assert_frames_byte_identical(threaded, baseline)
