"""Sanity tests for the TPC-H generator: integrity constraints the
queries rely on."""

import numpy as np
import pytest

from repro.dataframe import date
from repro.tpch import generate
from repro.tpch.schema import NATIONS, REGIONS


@pytest.fixture(scope="module")
def tables():
    return generate(scale_factor=0.005, seed=11)


class TestCardinalities:
    def test_fixed_tables(self, tables):
        assert tables["region"].n_rows == 5
        assert tables["nation"].n_rows == 25

    def test_scaled_tables(self, tables):
        assert tables["orders"].n_rows == 7500
        assert tables["customer"].n_rows == 750
        assert tables["part"].n_rows == 1000
        assert tables["partsupp"].n_rows == 4000
        # 1..7 lines per order, mean 4
        assert 3.0 < tables["lineitem"].n_rows / 7500 < 5.0

    def test_determinism(self):
        a = generate(0.002, seed=3)
        b = generate(0.002, seed=3)
        assert a["lineitem"].equals(b["lineitem"])
        assert a["orders"].equals(b["orders"])

    def test_seed_changes_data(self):
        a = generate(0.002, seed=3)
        b = generate(0.002, seed=4)
        assert not a["lineitem"].equals(b["lineitem"])


class TestReferentialIntegrity:
    def test_lineitem_orderkeys_exist(self, tables):
        okeys = set(tables["orders"].column("o_orderkey").tolist())
        lkeys = set(tables["lineitem"].column("l_orderkey").tolist())
        assert lkeys == okeys  # every order has >= 1 line

    def test_lineitem_partsupp_pairs_exist(self, tables):
        ps = set(
            zip(tables["partsupp"].column("ps_partkey").tolist(),
                tables["partsupp"].column("ps_suppkey").tolist())
        )
        li = set(
            zip(tables["lineitem"].column("l_partkey").tolist(),
                tables["lineitem"].column("l_suppkey").tolist())
        )
        assert li <= ps

    def test_orders_custkeys_valid(self, tables):
        n_cust = tables["customer"].n_rows
        ckeys = tables["orders"].column("o_custkey")
        assert ckeys.min() >= 1
        assert ckeys.max() <= n_cust

    def test_nation_region_names(self, tables):
        assert tables["region"].column("r_name").tolist() == list(REGIONS)
        assert tables["nation"].column("n_name").tolist() == [
            n for n, _ in NATIONS]


class TestDateLogic:
    def test_ship_after_order(self, tables):
        li = tables["lineitem"]
        orders = tables["orders"]
        odate = dict(zip(orders.column("o_orderkey").tolist(),
                         orders.column("o_orderdate").tolist()))
        ship = li.column("l_shipdate")
        okey = li.column("l_orderkey")
        base = np.array([odate[k] for k in okey.tolist()])
        assert (ship > base).all()
        assert (li.column("l_receiptdate") > ship).all()

    def test_returnflag_consistent(self, tables):
        li = tables["lineitem"]
        current = date("1995-06-17")
        flags = li.column("l_returnflag")
        receipt = li.column("l_receiptdate")
        assert set(flags[receipt > current].tolist()) == {"N"}
        assert set(flags[receipt <= current].tolist()) <= {"R", "A"}

    def test_linestatus_consistent(self, tables):
        li = tables["lineitem"]
        current = date("1995-06-17")
        status = li.column("l_linestatus")
        ship = li.column("l_shipdate")
        assert set(status[ship > current].tolist()) == {"O"}
        assert set(status[ship <= current].tolist()) == {"F"}


class TestVocabularies:
    def test_phone_country_codes(self, tables):
        cust = tables["customer"]
        codes = np.array([p[:2] for p in
                          cust.column("c_phone").tolist()]).astype(int)
        np.testing.assert_array_equal(
            codes, cust.column("c_nationkey") + 10
        )

    def test_brands_shape(self, tables):
        brands = set(tables["part"].column("p_brand").tolist())
        assert all(b.startswith("Brand#") and len(b) == 8 for b in brands)

    def test_comment_injections_present(self, tables):
        o_comments = tables["orders"].column("o_comment")
        special = np.char.find(o_comments, "special") >= 0
        assert 0 < special.sum() < len(o_comments) * 0.1

    def test_totalprice_matches_lines(self, tables):
        li = tables["lineitem"]
        orders = tables["orders"]
        charge = (
            li.column("l_extendedprice")
            * (1 + li.column("l_tax"))
            * (1 - li.column("l_discount"))
        )
        first_key = orders.column("o_orderkey")[0]
        expected = charge[li.column("l_orderkey") == first_key].sum()
        assert orders.column("o_totalprice")[0] == pytest.approx(
            expected, abs=0.02
        )

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            generate(0.0)
