"""Threaded-executor equivalence on representative TPC-H queries.

The threaded engine (one thread per node, §7.2) must produce exactly the
same final frames as the deterministic sync engine — intermediate
snapshot interleavings may differ, the t=1 answer may not.
"""

import pytest

from repro import WakeContext
from repro.tpch.queries import QUERIES
from tests.tpch.utils import assert_frames_close

# TPC-H-scale threaded runs; the sync equivalence suite covers the same
# queries in tier-1, so these only run with `pytest -m slow` (or -m "").
pytestmark = pytest.mark.slow

# A cross-section: per-category, join-heavy, subquery, scalar, anti-join.
REPRESENTATIVE = (1, 3, 6, 11, 13, 14, 18, 21, 22)

OVERRIDES = {11: {"fraction": 0.005}, 18: {"threshold": 150}}


@pytest.mark.parametrize("number", REPRESENTATIVE)
def test_threaded_final_matches_sync(number, tpch):
    catalog, _tables = tpch
    query = QUERIES[number]
    overrides = OVERRIDES.get(number, {})

    sync_ctx = WakeContext(catalog, executor="sync")
    sync_final = sync_ctx.run(
        query.build_plan(sync_ctx, **overrides), capture_all=False
    ).get_final()

    threaded_ctx = WakeContext(catalog, executor="threads")
    threaded_final = threaded_ctx.run(
        query.build_plan(threaded_ctx, **overrides), capture_all=False
    ).get_final()

    assert_frames_close(threaded_final, sync_final)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_shuffled_partitions_same_final(seed, tpch, tpch_tables):
    """Input arrival order must not change the exact answer (§8.5)."""
    catalog, _tables = tpch
    query = QUERIES[6]
    ctx = WakeContext(catalog, partition_shuffle_seed=seed)
    got = ctx.run(query.build_plan(ctx), capture_all=False).get_final()
    expected = query.run_reference(tpch_tables.tables)
    assert_frames_close(got, expected)
