"""Telemetry on vs off on TPC-H: byte-identical snapshot sequences.

Observability is observe-only: attaching the full instrumentation
bundle (metrics registry + tracer + scan instruments + per-step
timing) to a scheduled execution must leave every query's snapshot
sequence byte-identical to a bare ``WakeContext.run()`` — solo,
four-at-a-time through one scheduler, and under ``parallelism=4``.
"""

import pytest

from repro import WakeContext
from repro.obs import MetricsRegistry, ServiceInstruments, Tracer
from repro.service import FairShareScheduler, SessionState
from repro.tpch.queries import QUERIES
from tests.tpch.utils import assert_sequences_byte_identical

#: Same laptop-scale parameter overrides as test_queries.py.
OVERRIDES = {11: {"fraction": 0.005}, 18: {"threshold": 150}}

#: Four-at-a-time batches covering every query.
BATCHES = [tuple(range(n, min(n + 4, 23))) for n in range(1, 23, 4)]


def _plan(ctx, number):
    query = QUERIES[number]
    return query.build_plan(ctx, **OVERRIDES.get(number, {}))


def _instrumented_bundle():
    registry = MetricsRegistry()
    instruments = ServiceInstruments(registry)
    tracer = Tracer(clock=registry.clock)
    return registry, instruments, tracer


@pytest.fixture(scope="module")
def baselines(tpch):
    """Bare ``WakeContext.run()`` sequences, no telemetry anywhere."""
    catalog, _tables = tpch
    out = {}
    for number in sorted(QUERIES):
        ctx = WakeContext(catalog)
        out[number] = ctx.run(_plan(ctx, number))
    return out


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_telemetry_solo_parity(number, tpch, baselines):
    """Fully instrumented scheduled execution is byte-identical to the
    bare run, and the step counter saw every step."""
    catalog, _tables = tpch
    ctx = WakeContext(catalog)
    _registry, instruments, tracer = _instrumented_bundle()
    scheduler = FairShareScheduler(metrics=instruments)
    trace = tracer.begin(f"q{number:02d}")
    executor = ctx.executor_for(_plan(ctx, number), trace=trace)
    executor.scan_metrics = instruments.scan
    session = scheduler.submit(executor, name=f"q{number:02d}",
                               trace=trace)
    scheduler.run_until_idle()
    assert session.state is SessionState.DONE
    assert_sequences_byte_identical(
        session.executor.edf, baselines[number],
        f"q{number:02d} telemetry solo",
    )
    assert instruments.scheduler.steps.value == session.steps
    assert trace.steps_total == session.steps


@pytest.mark.parametrize("batch", BATCHES,
                         ids=lambda b: "q" + "-".join(map(str, b)))
def test_telemetry_concurrent_parity(batch, tpch, baselines):
    """Four queries time-sliced through ONE instrumented scheduler:
    every sequence stays byte-identical to its bare solo run."""
    catalog, _tables = tpch
    _registry, instruments, tracer = _instrumented_bundle()
    scheduler = FairShareScheduler(metrics=instruments)
    sessions = {}
    for number in batch:
        ctx = WakeContext(catalog)
        trace = tracer.begin(f"q{number:02d}")
        executor = ctx.executor_for(_plan(ctx, number), trace=trace)
        executor.scan_metrics = instruments.scan
        sessions[number] = scheduler.submit(
            executor, name=f"q{number:02d}",
            priority=1.0 + 0.5 * (number % 3),  # uneven shares
            trace=trace,
        )
    scheduler.run_until_idle()
    total_steps = 0
    for number, session in sessions.items():
        assert session.state is SessionState.DONE
        total_steps += session.steps
        assert_sequences_byte_identical(
            session.executor.edf, baselines[number],
            f"q{number:02d} telemetry concurrent",
        )
    assert instruments.scheduler.steps.value == total_steps


@pytest.mark.parametrize("number", [1, 3, 6])
def test_telemetry_parallelism4_parity(number, tpch):
    """Sharded plans (parallelism=4) stay self-identical under
    instrumentation: metered vs bare sharded sequences match
    byte-for-byte."""
    catalog, _tables = tpch
    ctx = WakeContext(catalog, parallelism=4)
    baseline = ctx.run(_plan(ctx, number))

    ctx2 = WakeContext(catalog, parallelism=4)
    _registry, instruments, tracer = _instrumented_bundle()
    scheduler = FairShareScheduler(metrics=instruments)
    trace = tracer.begin(f"q{number:02d}")
    executor = ctx2.executor_for(_plan(ctx2, number), trace=trace)
    executor.scan_metrics = instruments.scan
    session = scheduler.submit(executor, name=f"q{number:02d}",
                               trace=trace)
    scheduler.run_until_idle()
    assert session.state is SessionState.DONE
    assert_sequences_byte_identical(
        session.executor.edf, baseline,
        f"q{number:02d} telemetry parallelism=4",
    )
