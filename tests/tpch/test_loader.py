"""Tests for the TPC-H loader: clustering promises, formats, catalogs."""

import numpy as np
import pytest

from repro import WakeContext
from repro.storage import Catalog
from repro.tpch import generate, generate_and_load, load_tables
from repro.tpch.queries import QUERIES


class TestLoader:
    def test_partition_counts(self, tpch):
        catalog, _tables = tpch
        assert catalog.table("lineitem").n_partitions == 8
        assert catalog.table("orders").n_partitions == 8
        assert catalog.table("nation").n_partitions == 1
        assert catalog.table("region").n_partitions == 1
        assert catalog.table("customer").n_partitions == 2

    def test_clustering_promise_holds(self, tpch):
        """A clustering key value never straddles two partitions."""
        catalog, _tables = tpch
        meta = catalog.table("lineitem")
        last_key_per_partition = []
        first_key_per_partition = []
        for _idx, frame in meta.iter_partitions():
            keys = frame.column("l_orderkey")
            assert (np.diff(keys) >= 0).all(), "partition not sorted"
            first_key_per_partition.append(keys[0])
            last_key_per_partition.append(keys[-1])
        for prev_last, next_first in zip(last_key_per_partition,
                                         first_key_per_partition[1:]):
            assert next_first > prev_last, (
                "orderkey cluster straddles a partition boundary"
            )

    def test_round_trip_preserves_tables(self, tpch):
        catalog, tables = tpch
        for name in ("nation", "region", "supplier"):
            stored = catalog.table(name).read_all()
            assert stored.n_rows == tables[name].n_rows

    def test_catalog_json_reloads(self, tpch, tmp_path):
        catalog, _tables = tpch
        path = tmp_path / "cat.json"
        catalog.save(path)
        loaded = Catalog.load(path)
        assert set(loaded.names()) == set(catalog.names())

    def test_csv_format_end_to_end(self, tmp_path):
        """The paper's read_csv ingestion: tables stored as CSV flow
        through the whole engine and still produce exact answers."""
        catalog, tables = generate_and_load(
            tmp_path, scale_factor=0.002, seed=5, fact_partitions=4,
            fmt="csv",
        )
        assert catalog.table("lineitem").files[0].endswith(".csv")
        ctx = WakeContext(catalog)
        plan = QUERIES[6].build_plan(ctx)
        got = ctx.run(plan, capture_all=False).get_final()
        expected = QUERIES[6].run_reference(tables.tables)
        assert got.column("revenue")[0] == pytest.approx(
            expected.column("revenue")[0]
        )

    def test_reload_same_data_different_partitions(self, tmp_path):
        tables = generate(0.002, seed=9)
        cat_a = load_tables(tables, tmp_path / "a", fact_partitions=2)
        cat_b = load_tables(tables, tmp_path / "b", fact_partitions=6)
        a = cat_a.table("lineitem").read_all()
        b = cat_b.table("lineitem").read_all()
        assert a.equals(b)
