"""Optimizer-on vs pre-refactor planner parity over the TPC-H suite.

The rule engine re-expresses the old monolithic planner passes
(``pushdown_plan`` + ``shard_plan``) as rules and adds new logical
rewrites (combine-filters, aggregate-projection, common-subplan).  None
of that may perturb a single byte of any snapshot: for every query the
optimized context run must match a hand-assembled legacy pipeline —
materialize, pushdown_plan, shard_plan, SyncExecutor — snapshot for
snapshot, solo and at ``parallelism=4``.
"""

import pytest

from repro import WakeContext
from repro.engine.executor import SyncExecutor
from repro.engine.graph import QueryGraph
from repro.engine.planner import pushdown_plan, shard_plan
from repro.tpch.queries import QUERIES

from tests.tpch.utils import assert_sequences_byte_identical

#: Same laptop-scale parameter overrides as test_queries.py.
OVERRIDES = {11: {"fraction": 0.005}, 18: {"threshold": 150}}


def _build(catalog, number, **ctx_kwargs):
    ctx = WakeContext(catalog, **ctx_kwargs)
    query = QUERIES[number]
    return ctx, query.build_plan(ctx, **OVERRIDES.get(number, {}))


def _legacy_run(catalog, number, parallelism=1):
    """The pre-refactor pipeline, bypassing the rule engine entirely."""
    _ctx, frame = _build(catalog, number)
    graph = QueryGraph()
    output = frame.plan.materialize(graph, {})
    graph, output = pushdown_plan(graph, output)
    if parallelism > 1:
        graph, output = shard_plan(graph, output, parallelism)
    return SyncExecutor(graph, output, capture_all=True).run()


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_optimizer_sequences_match_legacy_planner(number, tpch):
    catalog, _tables = tpch
    ctx, frame = _build(catalog, number)
    got = ctx.run(frame)
    assert_sequences_byte_identical(
        got, _legacy_run(catalog, number), f"q{number}"
    )


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_optimizer_sequences_match_legacy_planner_sharded(number, tpch):
    catalog, _tables = tpch
    ctx, frame = _build(catalog, number)
    got = ctx.run(frame, parallelism=4)
    assert_sequences_byte_identical(
        got, _legacy_run(catalog, number, parallelism=4),
        f"q{number} parallelism=4",
    )


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_no_optimize_matches_legacy_unpushed(number, tpch):
    """The escape hatch really is the identity: ``optimize=False,
    pushdown=False`` equals materialize-and-execute with no passes."""
    catalog, _tables = tpch
    ctx, frame = _build(catalog, number, optimize=False, pushdown=False)
    got = ctx.run(frame)
    assert ctx.last_trace.total_rewrites == 0
    _ctx2, frame2 = _build(catalog, number)
    graph = QueryGraph()
    output = frame2.plan.materialize(graph, {})
    expected = SyncExecutor(graph, output, capture_all=True).run()
    assert_sequences_byte_identical(got, expected, f"q{number} raw")
