"""Unit tests for the confidence-interval machinery (paper §6, Appendix B)."""

import numpy as np
import pytest

from repro.dataframe import DataFrame, col
from repro.core.ci import (
    chebyshev_k,
    interval,
    propagate_map_variance,
    proxy_var_distinct_count,
    value_variance,
    var_avg,
    var_count,
    var_count_distinct,
    var_partial_sum,
    var_sum,
    CIConfig,
    sigma_column,
)
from repro.errors import InferenceError


class TestChebyshev:
    def test_95_percent_k(self):
        # the paper: "k ≈ 4.5 for 95% CI"
        assert chebyshev_k(0.95) == pytest.approx(4.47, abs=0.03)

    def test_higher_confidence_wider(self):
        assert chebyshev_k(0.99) > chebyshev_k(0.9)

    def test_invalid_confidence(self):
        with pytest.raises(InferenceError):
            chebyshev_k(0.0)
        with pytest.raises(InferenceError):
            chebyshev_k(1.0)

    def test_config_k(self):
        assert CIConfig(0.95).k == chebyshev_k(0.95)

    def test_interval(self):
        lo, hi = interval(np.array([10.0]), np.array([2.0]), k=3.0)
        assert lo[0] == pytest.approx(4.0)
        assert hi[0] == pytest.approx(16.0)

    def test_interval_nan_sigma(self):
        lo, hi = interval(np.array([10.0]), np.array([np.nan]), k=3.0)
        assert np.isnan(lo[0]) and np.isnan(hi[0])

    def test_sigma_column_name(self):
        assert sigma_column("revenue") == "revenue__sigma"


class TestInitialVariances:
    def test_var_count_zero_at_completion(self):
        assert var_count(np.array([100.0]), 1.0, 0.5).tolist() == [0.0]

    def test_var_count_grows_with_var_w(self):
        small = var_count(np.array([100.0]), 0.5, 0.01)
        big = var_count(np.array([100.0]), 0.5, 0.1)
        assert big[0] > small[0]

    def test_var_count_formula(self):
        x_hat, t, vw = 50.0, 0.25, 0.04
        expected = (x_hat * np.log(1 / t)) ** 2 * vw
        got = var_count(np.array([x_hat]), t, vw)
        assert got[0] == pytest.approx(expected)

    def test_value_variance_matches_numpy(self):
        vals = np.array([1.0, 5.0, 9.0, 13.0])
        s2 = value_variance(
            np.array([4.0]), np.array([vals.sum()]),
            np.array([(vals**2).sum()]),
        )
        assert s2[0] == pytest.approx(np.var(vals, ddof=1))

    def test_var_partial_sum(self):
        assert var_partial_sum(np.array([10.0]),
                               np.array([4.0])).tolist() == [40.0]

    def test_var_sum_formula(self):
        y, x, xh = 100.0, 10.0, 40.0
        vy, vxh = 25.0, 9.0
        expected = (vy * xh**2 + vxh * y**2) / x**2
        got = var_sum(np.array([y]), np.array([x]), np.array([xh]),
                      np.array([vy]), np.array([vxh]))
        assert got[0] == pytest.approx(expected)

    def test_var_sum_zero_cardinality(self):
        got = var_sum(np.array([0.0]), np.array([0.0]), np.array([0.0]),
                      np.array([0.0]), np.array([0.0]))
        assert got[0] == 0.0

    def test_var_avg_clt(self):
        assert var_avg(np.array([8.0]), np.array([4.0]))[0] == 2.0

    def test_proxy_var_distinct(self):
        v = proxy_var_distinct_count(np.array([10.0]), np.array([40.0]))
        assert v[0] == pytest.approx(10.0 * (1 - 0.25))

    def test_var_count_distinct_valid_region(self):
        out = var_count_distinct(
            y=np.array([20.0]),
            x=np.array([100.0]),
            x_hat=np.array([400.0]),
            solution=np.array([30.0]),
            var_y=np.array([4.0]),
            var_x_hat=np.array([100.0]),
        )
        assert out[0] >= 0.0
        assert np.isfinite(out[0])

    def test_var_count_distinct_degenerate_zero(self):
        out = var_count_distinct(
            y=np.array([0.0]), x=np.array([0.0]),
            x_hat=np.array([0.0]), solution=np.array([0.0]),
            var_y=np.array([0.0]), var_x_hat=np.array([0.0]),
        )
        assert out[0] == 0.0


class TestMapPropagation:
    def frame(self):
        return DataFrame(
            {
                "a": np.array([2.0, 4.0]),
                "b": np.array([10.0, 20.0]),
            }
        )

    def test_linear_map_exact(self):
        # Var(3a) = 9 Var(a)
        var = propagate_map_variance(
            self.frame(), col("a") * 3, {"a": np.array([1.0, 2.0])}
        )
        np.testing.assert_allclose(var, [9.0, 18.0], rtol=1e-4)

    def test_sum_of_independent(self):
        var = propagate_map_variance(
            self.frame(),
            col("a") + col("b"),
            {"a": np.array([1.0, 1.0]), "b": np.array([4.0, 4.0])},
        )
        np.testing.assert_allclose(var, [5.0, 5.0], rtol=1e-4)

    def test_ratio_matches_delta_method(self):
        # f = a/b; Var ≈ (1/b)² Var(a) + (a/b²)² Var(b)
        frame = self.frame()
        var_a = np.array([0.5, 0.5])
        var_b = np.array([2.0, 2.0])
        got = propagate_map_variance(
            frame, col("a") / col("b"), {"a": var_a, "b": var_b}
        )
        a, b = frame.column("a"), frame.column("b")
        expected = (1 / b) ** 2 * var_a + (a / b**2) ** 2 * var_b
        np.testing.assert_allclose(got, expected, rtol=1e-4)

    def test_exact_columns_contribute_nothing(self):
        var = propagate_map_variance(
            self.frame(), col("a") * col("b"), {"b": np.zeros(2)}
        )
        np.testing.assert_allclose(var, [0.0, 0.0], atol=1e-12)

    def test_unreferenced_variance_ignored(self):
        var = propagate_map_variance(
            self.frame(), col("a"), {"b": np.array([100.0, 100.0])}
        )
        np.testing.assert_allclose(var, [0.0, 0.0])
