"""Unit + statistical tests for aggregate estimators (paper §5.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import (
    estimate_avg,
    estimate_count,
    estimate_count_distinct,
    estimate_order_statistic,
    estimate_sum,
    estimate_variance,
)


class TestSimpleEstimators:
    def test_count_is_xhat(self):
        np.testing.assert_allclose(
            estimate_count(np.array([10.0, 40.0])), [10.0, 40.0]
        )

    def test_sum_scales_by_cardinality_ratio(self):
        # observed 25 over 5 rows, projecting 20 rows -> 100
        est = estimate_sum(np.array([25.0]), np.array([5.0]),
                           np.array([20.0]))
        assert est[0] == pytest.approx(100.0)

    def test_sum_identity_at_full_progress(self):
        est = estimate_sum(np.array([25.0]), np.array([5.0]),
                           np.array([5.0]))
        assert est[0] == pytest.approx(25.0)

    def test_sum_zero_cardinality(self):
        est = estimate_sum(np.array([0.0]), np.array([0.0]),
                           np.array([0.0]))
        assert est[0] == 0.0

    def test_avg_is_ratio(self):
        est = estimate_avg(np.array([10.0, 0.0]), np.array([4.0, 0.0]))
        assert est[0] == pytest.approx(2.5)
        assert np.isnan(est[1])

    def test_order_statistic_identity(self):
        np.testing.assert_allclose(
            estimate_order_statistic(np.array([3.0])), [3.0]
        )

    def test_variance_matches_numpy(self):
        values = np.array([1.0, 4.0, 9.0, 16.0])
        est = estimate_variance(
            np.array([4.0]),
            np.array([values.sum()]),
            np.array([(values**2).sum()]),
        )
        assert est[0] == pytest.approx(np.var(values, ddof=1))

    def test_variance_single_sample_nan(self):
        est = estimate_variance(np.array([1.0]), np.array([3.0]),
                                np.array([9.0]))
        assert np.isnan(est[0])


class TestCountDistinct:
    def test_exact_when_complete(self):
        # x >= x_hat: sample is the population -> identity
        est = estimate_count_distinct(
            np.array([7.0]), np.array([100.0]), np.array([100.0])
        )
        assert est[0] == pytest.approx(7.0)

    def test_all_distinct_extrapolates_to_all_distinct(self):
        est = estimate_count_distinct(
            np.array([50.0]), np.array([50.0]), np.array([200.0])
        )
        assert est[0] == pytest.approx(200.0)

    def test_single_value_stays_near_one(self):
        # 50 rows, 1 distinct value; projecting 200 rows -> ~1 distinct
        est = estimate_count_distinct(
            np.array([1.0]), np.array([50.0]), np.array([200.0])
        )
        assert 1.0 <= est[0] <= 1.5

    def test_monotone_in_observed_distinct(self):
        xs = np.full(3, 100.0)
        xh = np.full(3, 1000.0)
        ys = np.array([10.0, 40.0, 90.0])
        est = estimate_count_distinct(ys, xs, xh)
        assert est[0] < est[1] < est[2]

    def test_bounds(self):
        ys = np.array([10.0, 40.0, 90.0])
        est = estimate_count_distinct(ys, np.full(3, 100.0),
                                      np.full(3, 1000.0))
        assert (est >= ys).all()
        assert (est <= 1000.0 + 1e-6).all()

    def test_zero_rows_passthrough(self):
        est = estimate_count_distinct(
            np.array([0.0]), np.array([0.0]), np.array([100.0])
        )
        assert est[0] == 0.0

    def test_vectorized_mixed_cases(self):
        ys = np.array([0.0, 5.0, 50.0, 20.0])
        xs = np.array([0.0, 5.0, 100.0, 100.0])
        xh = np.array([10.0, 50.0, 100.0, 400.0])
        est = estimate_count_distinct(ys, xs, xh)
        assert est[0] == 0.0
        assert est[1] == pytest.approx(50.0)  # all distinct
        assert est[2] == pytest.approx(50.0)  # complete
        assert est[3] > 20.0  # proper estimation

    @pytest.mark.parametrize("n_distinct", [5, 25, 100])
    def test_statistical_recovery_equal_frequencies(self, n_distinct):
        """Sampling x of X tuples spread equally over D values: the MoM
        estimate should land near D (within ~15% for these sizes)."""
        rng = np.random.default_rng(42)
        population_size = 2000
        population = np.repeat(
            np.arange(n_distinct), population_size // n_distinct
        )
        sample = rng.choice(population, size=500, replace=False)
        y = len(np.unique(sample))
        est = estimate_count_distinct(
            np.array([float(y)]),
            np.array([500.0]),
            np.array([float(len(population))]),
        )
        assert est[0] == pytest.approx(n_distinct, rel=0.15)


@given(
    y=st.floats(1.0, 500.0),
    x_mult=st.floats(1.0, 10.0),
    xh_mult=st.floats(1.1, 20.0),
)
@settings(max_examples=80, deadline=None)
def test_count_distinct_always_bracketed(y, x_mult, xh_mult):
    """Property: estimates stay in [y, x̂] and never NaN/inf."""
    x = y * x_mult
    x_hat = x * xh_mult
    est = estimate_count_distinct(
        np.array([y]), np.array([x]), np.array([x_hat])
    )
    assert np.isfinite(est[0])
    assert y - 1e-9 <= est[0] <= x_hat + 1e-6


@given(
    values=st.lists(st.floats(-1000, 1000), min_size=2, max_size=100),
    fraction=st.floats(0.1, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_sum_estimator_is_linear_scaling(values, fraction):
    """Property: f_sum equals raw-sum times x̂/x for arbitrary inputs."""
    arr = np.array(values)
    x = float(len(arr))
    x_hat = x / fraction
    est = estimate_sum(np.array([arr.sum()]), np.array([x]),
                       np.array([x_hat]))
    assert est[0] == pytest.approx(arr.sum() / fraction, rel=1e-9,
                                   abs=1e-6)
