"""Differential testing of the widened aggregate surface.

Every aggregate is checked against a pure-numpy oracle implementing
pandas groupby semantics (NaN skipped; ``prod`` of an empty/all-NaN
group is 1.0; ``first``/``last`` take the first/last *valid* value;
``sem``/``std``/``var`` use ddof=1) on hypothesis-generated random
frames including NaNs and empty groups.  Two paths are exercised:

* the one-shot eager kernels (``DataFrame.aggregate``), and
* the streaming mergeable state — the same rows split into arbitrary
  chunk boundaries, folded through ``GroupedAggregateState`` delta by
  delta and read back through ``AggregateInference`` at t = 1 — which
  must agree with the one-shot answer (mergeability, paper Table 2).

When a real pandas is importable the oracle itself is cross-checked;
the container image ships without pandas, so that test usually skips.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe.frame import DataFrame
from repro.dataframe.groupby import AggSpec
from repro.core.growth import GrowthModel
from repro.core.inference import AggregateInference
from repro.core.state import GroupedAggregateState

try:
    import pandas
except ImportError:  # pragma: no cover - image ships without pandas
    pandas = None

#: Aggregates under differential test (the PR's additions plus the
#: pre-existing moments family they share state with).
AGGS = ("sum", "avg", "var", "stddev", "sem", "prod", "first", "last")


# ---------------------------------------------------------------------------
# Oracle (pandas groupby semantics in plain numpy)
# ---------------------------------------------------------------------------

def oracle(agg: str, values: np.ndarray) -> float:
    """The expected aggregate of one group's raw values."""
    valid = values[~np.isnan(values)]
    n = len(valid)
    if agg == "sum":
        return valid.sum() if n else 0.0
    if agg == "prod":
        return valid.prod() if n else 1.0
    if agg == "first":
        return valid[0] if n else np.nan
    if agg == "last":
        return valid[-1] if n else np.nan
    if agg == "avg":
        return valid.mean() if n else np.nan
    if n < 2:
        return np.nan  # var/stddev/sem with ddof=1
    var = valid.var(ddof=1)
    if agg == "var":
        return var
    if agg == "stddev":
        return np.sqrt(var)
    if agg == "sem":
        return np.sqrt(var / n)
    raise AssertionError(agg)


@st.composite
def grouped_data(draw):
    """(keys, values) arrays with NaNs, ties, and singleton groups."""
    n = draw(st.integers(min_value=1, max_value=60))
    keys = draw(
        st.lists(st.integers(min_value=0, max_value=5),
                 min_size=n, max_size=n)
    )
    values = draw(
        st.lists(
            st.one_of(
                st.floats(min_value=-1e3, max_value=1e3,
                          allow_nan=False, width=32),
                st.just(float("nan")),
            ),
            min_size=n, max_size=n,
        )
    )
    return (np.asarray(keys, dtype=np.int64),
            np.asarray(values, dtype=np.float64))


def _assert_close(got: float, want: float, label: str) -> None:
    if np.isnan(want):
        assert np.isnan(got), f"{label}: expected NaN, got {got}"
    else:
        assert np.isclose(got, want, rtol=1e-6, atol=1e-9), (
            f"{label}: got {got}, oracle says {want}"
        )


# ---------------------------------------------------------------------------
# One-shot kernels vs oracle
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(data=grouped_data())
def test_eager_aggregates_match_oracle(data):
    keys, values = data
    frame = DataFrame({"k": keys, "v": values})
    out = frame.aggregate({"v": list(AGGS)}, by=["k"])
    for i, k in enumerate(out.column("k")):
        group = values[keys == k]
        for agg in AGGS:
            _assert_close(
                out.column(f"{agg}_v")[i], oracle(agg, group),
                f"{agg} of group {k}",
            )


@settings(max_examples=30, deadline=None)
@given(data=grouped_data())
def test_global_aggregates_match_oracle(data):
    _keys, values = data
    frame = DataFrame({"v": values})
    out = frame.aggregate({"v": list(AGGS)})
    for agg in AGGS:
        _assert_close(out.column(f"{agg}_v")[0], oracle(agg, values),
                      f"global {agg}")


# ---------------------------------------------------------------------------
# Mergeable state (chunked deltas) vs one-shot
# ---------------------------------------------------------------------------

@st.composite
def chunked_data(draw):
    keys, values = draw(grouped_data())
    n = len(keys)
    n_cuts = draw(st.integers(min_value=0, max_value=min(4, n - 1)))
    cuts = sorted(
        draw(
            st.lists(st.integers(min_value=1, max_value=n - 1),
                     min_size=n_cuts, max_size=n_cuts)
        )
    ) if n > 1 else []
    return keys, values, [0, *cuts, n]


@settings(max_examples=60, deadline=None)
@given(data=chunked_data())
def test_merged_state_matches_oracle(data):
    """Arbitrary delta boundaries must not change any final value."""
    keys, values, bounds = data
    specs = [AggSpec(agg, "v", f"{agg}_v") for agg in AGGS]
    state = GroupedAggregateState(("k",), specs)
    for lo, hi in zip(bounds, bounds[1:]):
        if hi > lo:
            state.consume_delta(
                DataFrame({"k": keys[lo:hi], "v": values[lo:hi]})
            )
    inference = AggregateInference(GrowthModel(prior_w=1.0))
    out = inference.infer(state, 1.0)
    for i, k in enumerate(out.column("k")):
        group = values[keys == k]
        for agg in AGGS:
            _assert_close(
                out.column(f"{agg}_v")[i], oracle(agg, group),
                f"merged {agg} of group {k} (chunks {bounds})",
            )


# ---------------------------------------------------------------------------
# Oracle vs real pandas (when available)
# ---------------------------------------------------------------------------

@pytest.mark.skipif(pandas is None, reason="pandas not installed")
@settings(max_examples=40, deadline=None)
@given(data=grouped_data())
def test_oracle_matches_pandas(data):
    keys, values = data
    series = pandas.DataFrame({"k": keys, "v": values}).groupby("k")["v"]
    mapped = {
        "sum": "sum", "avg": "mean", "var": "var", "stddev": "std",
        "sem": "sem", "prod": "prod", "first": "first", "last": "last",
    }
    for agg, pandas_name in mapped.items():
        expected = getattr(series, pandas_name)()
        for k in np.unique(keys):
            _assert_close(
                oracle(agg, values[keys == k]), expected.loc[k],
                f"oracle {agg} vs pandas {pandas_name} (group {k})",
            )
