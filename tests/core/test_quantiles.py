"""Tests for median/quantile order statistics (paper §5.3/§5.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import F, WakeContext
from repro.dataframe import AggSpec, DataFrame, group_aggregate
from repro.dataframe.groupby import group_quantile
from repro.core.growth import GrowthModel
from repro.core.inference import AggregateInference
from repro.core.state import GroupedAggregateState
from repro.errors import QueryError


class TestAggSpecValidation:
    def test_quantile_requires_param(self):
        with pytest.raises(QueryError, match="param"):
            AggSpec("quantile", "x", "q")
        with pytest.raises(QueryError, match="param"):
            AggSpec("quantile", "x", "q", param=1.5)

    def test_median_fraction(self):
        assert AggSpec("median", "x", "m").quantile_fraction == 0.5
        assert AggSpec("quantile", "x", "q",
                       param=0.9).quantile_fraction == 0.9

    def test_non_quantile_fraction_rejected(self):
        with pytest.raises(QueryError):
            AggSpec("sum", "x", "s").quantile_fraction


class TestGroupQuantileKernel:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, size=200).astype(np.int64)
        values = rng.normal(size=200)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            got = group_quantile(codes, 4, values, q)
            for g in range(4):
                expected = np.quantile(values[codes == g], q)
                assert got[g] == pytest.approx(expected)

    def test_empty_group_nan(self):
        got = group_quantile(np.array([0]), 2, np.array([5.0]), 0.5)
        assert got[0] == 5.0
        assert np.isnan(got[1])

    def test_empty_input(self):
        got = group_quantile(np.empty(0, dtype=np.int64), 3,
                             np.empty(0), 0.5)
        assert np.isnan(got).all()


class TestGroupAggregateMedian:
    def test_exact_median(self):
        f = DataFrame(
            {
                "g": np.array(["a"] * 5 + ["b"] * 4),
                "v": np.array([1.0, 2.0, 3.0, 4.0, 100.0,
                               10.0, 20.0, 30.0, 40.0]),
            }
        )
        out = group_aggregate(
            f, ["g"],
            [AggSpec("median", "v", "med"),
             AggSpec("quantile", "v", "p75", param=0.75)],
        )
        med = dict(zip(out.column("g").tolist(),
                       out.column("med").tolist()))
        assert med == {"a": 3.0, "b": 25.0}


class TestIncrementalQuantiles:
    def test_value_buffer_merges_to_exact(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=300)
        frame = DataFrame(
            {"g": np.zeros(300, dtype=np.int64), "v": values}
        )
        state = GroupedAggregateState(
            by=("g",), specs=(AggSpec("median", "v", "med"),)
        )
        for start in range(0, 300, 50):
            state.consume_delta(frame.slice(start, start + 50))
        got = state.sample_quantiles(state.specs[0])
        assert got[0] == pytest.approx(np.median(values))

    def test_inference_emits_sample_quantile(self):
        frame = DataFrame(
            {"v": np.array([1.0, 2.0, 3.0, 4.0, 5.0])}
        )
        state = GroupedAggregateState(
            by=(), specs=(AggSpec("median", "v", "med"),)
        )
        state.consume_delta(frame)
        inference = AggregateInference(GrowthModel(prior_w=1.0))
        out = inference.infer(state, t=0.5)
        assert out.column("med")[0] == 3.0  # identity, no scaling

    def test_snapshot_reset_clears_buffer(self):
        state = GroupedAggregateState(
            by=(), specs=(AggSpec("median", "v", "med"),)
        )
        state.consume_delta(DataFrame({"v": np.array([100.0] * 10)}))
        state.consume_snapshot(DataFrame({"v": np.array([1.0, 3.0])}))
        assert state.sample_quantiles(state.specs[0])[0] == 2.0


class TestEndToEnd:
    def test_engine_median_converges(self, catalog, sales_frame):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(
            F.median("qty").alias("med"),
            F.quantile("qty", 0.9).alias("p90"),
            by=["region"],
        )
        edf = ctx.run(plan)
        final = edf.get_final()
        for region in ("east", "west"):
            keep = sales_frame.column("region") == region
            idx = final.column("region").tolist().index(region)
            assert final.column("med")[idx] == pytest.approx(
                np.median(sales_frame.column("qty")[keep])
            )
            assert final.column("p90")[idx] == pytest.approx(
                np.quantile(sales_frame.column("qty")[keep], 0.9)
            )

    def test_estimates_track_sample(self, catalog):
        """Intermediate medians are the sample median of observed rows
        (the paper's f_order identity estimator)."""
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.median("qty").alias("med"))
        edf = ctx.run(plan)
        assert len(edf) >= 2
        for snapshot in edf.snapshots:
            assert np.isfinite(snapshot.frame.column("med")[0])


@given(
    values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=120),
    n_parts=st.integers(1, 6),
    q=st.sampled_from([0.1, 0.5, 0.9]),
)
@settings(max_examples=40, deadline=None)
def test_quantile_merge_invariance(values, n_parts, q):
    """Property: quantile over any partitioning equals one-shot numpy."""
    frame = DataFrame(
        {"g": np.zeros(len(values), dtype=np.int64),
         "v": np.array(values, dtype=np.float64)}
    )
    state = GroupedAggregateState(
        by=("g",), specs=(AggSpec("quantile", "v", "q", param=q),)
    )
    bounds = np.linspace(0, len(values), n_parts + 1).astype(int)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        state.consume_delta(frame.slice(int(lo), int(hi)))
    got = state.sample_quantiles(state.specs[0])[0]
    assert got == pytest.approx(np.quantile(np.array(values), q),
                                rel=1e-9, abs=1e-9)
