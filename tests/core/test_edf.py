"""Unit tests for the user-visible evolving-data-frame handle."""

import numpy as np
import pytest

from repro.core.edf import EdfSnapshot, EvolvingDataFrame
from repro.core.properties import Progress
from repro.dataframe import DataFrame
from repro.errors import ExecutionError


def snapshot(seq, done, total, value):
    return EdfSnapshot(
        frame=DataFrame({"v": np.array([value])}),
        progress=Progress(done={"t": done}, total={"t": total}),
        sequence=seq,
        wall_time=0.1 * (seq + 1),
        rows_processed=done,
    )


class TestEvolvingDataFrame:
    def test_empty_handle_raises(self):
        edf = EvolvingDataFrame("x")
        assert not edf.is_final
        with pytest.raises(ExecutionError, match="no snapshots"):
            edf.get()
        with pytest.raises(ExecutionError):
            edf.first()
        with pytest.raises(ExecutionError):
            edf.get_final()

    def test_get_returns_latest(self):
        edf = EvolvingDataFrame()
        edf.append(snapshot(0, 5, 10, 1.0))
        edf.append(snapshot(1, 10, 10, 2.0))
        assert edf.get().column("v")[0] == 2.0
        assert edf.first().frame.column("v")[0] == 1.0
        assert len(edf) == 2
        assert [s.sequence for s in edf] == [0, 1]

    def test_get_final_requires_completion(self):
        edf = EvolvingDataFrame()
        edf.append(snapshot(0, 5, 10, 1.0))
        assert not edf.is_final
        with pytest.raises(ExecutionError, match="not reached t=1"):
            edf.get_final()
        edf.append(snapshot(1, 10, 10, 2.0))
        assert edf.is_final
        assert edf.get_final().column("v")[0] == 2.0

    def test_snapshot_properties(self):
        s = snapshot(0, 5, 10, 1.0)
        assert s.t == 0.5
        assert not s.is_final
        assert snapshot(1, 10, 10, 1.0).is_final

    def test_consistency_enforced(self):
        edf = EvolvingDataFrame("demo")
        edf.append(snapshot(0, 5, 10, 1.0))
        bad = EdfSnapshot(
            frame=DataFrame({"other": np.array([1.0])}),
            progress=Progress(done={"t": 10}, total={"t": 10}),
            sequence=1,
            wall_time=0.5,
            rows_processed=10,
        )
        with pytest.raises(ExecutionError, match="consistency"):
            edf.append(bad)

    def test_snapshots_tuple_is_immutable_view(self):
        edf = EvolvingDataFrame()
        edf.append(snapshot(0, 5, 10, 1.0))
        view = edf.snapshots
        edf.append(snapshot(1, 10, 10, 2.0))
        assert len(view) == 1
        assert len(edf.snapshots) == 2

    def test_describe(self):
        edf = EvolvingDataFrame()
        edf.append(snapshot(0, 5, 10, 1.0))
        edf.append(snapshot(1, 10, 10, 2.0))
        trace = edf.describe()
        assert trace.n_rows == 2
        assert trace.column("t").tolist() == [0.5, 1.0]
        assert trace.column("rows_processed").tolist() == [5, 10]
        assert trace.column("result_rows").tolist() == [1, 1]

    def test_describe_empty(self):
        assert EvolvingDataFrame().describe().n_rows == 0
