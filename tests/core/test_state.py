"""Unit + property tests for intrinsic state maintenance (paper §4.2).

Includes a faithful replay of the paper's worked example: counting
students by home state across two partitions, checking both the intrinsic
merge (α) and — in test_inference — the scaled extrinsic estimates (β).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import AggSpec, DataFrame, group_aggregate
from repro.core.mergeable import CARDINALITY_COLUMN
from repro.core.state import (
    GroupedAggregateState,
    IntrinsicStore,
    SYNTHETIC_KEY,
    Version,
)
from repro.errors import QueryError


def students_partition_1():
    return DataFrame(
        {
            "id": np.array([1, 2, 3]),
            "state": np.array(["IL", "IL", "MI"]),
        }
    )


def students_partition_2():
    return DataFrame(
        {
            "id": np.array([4, 5]),
            "state": np.array(["IL", "MI"]),
        }
    )


class TestVersionsAndPartials:
    def test_version_union(self):
        v = Version()
        v.append(students_partition_1())
        v.append(students_partition_2())
        assert v.n_partials == 2
        assert v.frame().n_rows == 5

    def test_empty_version_raises(self):
        with pytest.raises(QueryError):
            Version().frame()

    def test_store_append_creates_first_version(self):
        store = IntrinsicStore()
        store.append_partial(students_partition_1())
        assert store.n_versions == 1
        assert store.latest_frame().n_rows == 3

    def test_store_new_version_refreshes(self):
        store = IntrinsicStore()
        store.append_partial(students_partition_1())
        store.new_version(students_partition_2())
        assert store.n_versions == 2
        assert store.latest_frame().n_rows == 2

    def test_store_empty_latest_raises(self):
        with pytest.raises(QueryError):
            IntrinsicStore().latest

class TestPaperStudentExample:
    """§4.2: α2 after one partition is [(IL,2),(MI,1)]; after merging the
    second partition it becomes [(IL,3),(MI,2)]."""

    def make_state(self):
        return GroupedAggregateState(
            by=("state",), specs=(AggSpec("count", None, "n"),)
        )

    def test_first_partition(self):
        state = self.make_state()
        state.consume_delta(students_partition_1())
        frame = state.state_frame()
        counts = dict(zip(frame.column("state").tolist(),
                          frame.column("__n__count").tolist()))
        assert counts == {"IL": 2.0, "MI": 1.0}
        assert state.rows_consumed == 3
        assert state.n_groups == 2

    def test_incremental_merge(self):
        state = self.make_state()
        state.consume_delta(students_partition_1())
        state.consume_delta(students_partition_2())
        frame = state.state_frame()
        counts = dict(zip(frame.column("state").tolist(),
                          frame.column("__n__count").tolist()))
        assert counts == {"IL": 3.0, "MI": 2.0}
        assert state.rows_consumed == 5
        assert state.version == 1  # incremental: same version throughout

    def test_cardinality_column(self):
        state = self.make_state()
        state.consume_delta(students_partition_1())
        state.consume_delta(students_partition_2())
        frame = state.state_frame()
        cards = dict(zip(frame.column("state").tolist(),
                         frame.column(CARDINALITY_COLUMN).tolist()))
        assert cards == {"IL": 3.0, "MI": 2.0}
        assert state.mean_cardinality == pytest.approx(2.5)


class TestVersioning:
    def test_begin_version_resets(self):
        state = GroupedAggregateState(
            by=("state",), specs=(AggSpec("count", None, "n"),)
        )
        state.consume_delta(students_partition_1())
        state.begin_version()
        assert state.version == 2
        assert state.rows_consumed == 0
        with pytest.raises(QueryError):
            state.state_frame()

    def test_consume_snapshot_is_reset_plus_delta(self):
        state = GroupedAggregateState(
            by=("state",), specs=(AggSpec("count", None, "n"),)
        )
        state.consume_delta(students_partition_1())
        state.consume_snapshot(students_partition_2())
        frame = state.state_frame()
        counts = dict(zip(frame.column("state").tolist(),
                          frame.column("__n__count").tolist()))
        assert counts == {"IL": 1.0, "MI": 1.0}  # snapshot only


class TestAggregateKinds:
    def frame(self):
        return DataFrame(
            {
                "g": np.array(["a", "a", "b", "b", "b"]),
                "v": np.array([1.0, 3.0, 10.0, 20.0, 60.0]),
            }
        )

    def test_min_max_merge(self):
        state = GroupedAggregateState(
            by=("g",),
            specs=(AggSpec("min", "v", "lo"), AggSpec("max", "v", "hi")),
        )
        state.consume_delta(self.frame().slice(0, 3))
        state.consume_delta(self.frame().slice(3, 5))
        frame = state.state_frame()
        by_g = {
            g: (lo, hi)
            for g, lo, hi in zip(
                frame.column("g").tolist(),
                frame.column("__lo__min").tolist(),
                frame.column("__hi__max").tolist(),
            )
        }
        assert by_g["a"] == (1.0, 3.0)
        assert by_g["b"] == (10.0, 60.0)

    def test_var_state_merges_to_exact(self):
        state = GroupedAggregateState(
            by=("g",), specs=(AggSpec("var", "v", "s2"),)
        )
        state.consume_delta(self.frame().slice(0, 2))
        state.consume_delta(self.frame().slice(2, 5))
        frame = state.state_frame()
        count = frame.column("__s2__count")
        total = frame.column("__s2__sum")
        sumsq = frame.column("__s2__sumsq")
        idx = frame.column("g").tolist().index("b")
        m2 = sumsq[idx] - total[idx] ** 2 / count[idx]
        expected = np.var([10.0, 20.0, 60.0], ddof=1)
        assert m2 / (count[idx] - 1) == pytest.approx(expected)

    def test_distinct_pairs_exact_sets(self):
        f = DataFrame(
            {
                "g": np.array(["a", "a", "a", "b"]),
                "v": np.array([1, 1, 2, 9]),
            }
        )
        state = GroupedAggregateState(
            by=("g",), specs=(AggSpec("count_distinct", "v", "d"),)
        )
        state.consume_delta(f.slice(0, 2))
        state.consume_delta(f.slice(2, 4))
        spec = state.specs[0]
        counts = state.distinct_counts(spec)
        frame = state.state_frame()
        by_g = dict(zip(frame.column("g").tolist(), counts.tolist()))
        assert by_g == {"a": 2.0, "b": 1.0}

    def test_distinct_counts_empty(self):
        state = GroupedAggregateState(
            by=("g",), specs=(AggSpec("count_distinct", "v", "d"),)
        )
        f = DataFrame({"g": np.array(["a"]), "v": np.array([1])})
        state.consume_delta(f)
        # artificially clear the pairs to exercise the defensive path
        state._pairs = {}
        assert state.distinct_counts(state.specs[0]).tolist() == [0.0]


class TestGlobalAggregates:
    def test_synthetic_key_injected(self):
        state = GroupedAggregateState(
            by=(), specs=(AggSpec("sum", "v", "s"),)
        )
        f = DataFrame({"v": np.array([1.0, 2.0, 3.0])})
        state.consume_delta(f)
        frame = state.state_frame()
        assert SYNTHETIC_KEY in frame.column_names
        assert frame.n_rows == 1
        assert frame.column("__s__sum")[0] == pytest.approx(6.0)
        assert state.output_keys() == ()

    def test_empty_partial_ignored(self):
        state = GroupedAggregateState(
            by=(), specs=(AggSpec("sum", "v", "s"),)
        )
        state.consume_delta(DataFrame({"v": np.array([], dtype=float)}))
        assert state.n_groups == 0

    def test_requires_specs(self):
        with pytest.raises(QueryError):
            GroupedAggregateState(by=("g",), specs=())


# ---------------------------------------------------------------------------
# Property: incremental merge across any partitioning equals one-shot
# aggregation (the Table 2 mergeability law, end-to-end).
# ---------------------------------------------------------------------------

rows = st.lists(
    st.tuples(st.integers(0, 4), st.floats(-50, 50), st.integers(0, 3)),
    min_size=1,
    max_size=80,
)


@given(rows, st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_merge_invariance_under_partitioning(data, n_parts):
    ks, vs, cs = zip(*data)
    full = DataFrame(
        {"k": np.array(ks), "v": np.array(vs), "c": np.array(cs)}
    )
    specs = (
        AggSpec("sum", "v", "s"),
        AggSpec("count", None, "n"),
        AggSpec("min", "v", "lo"),
        AggSpec("max", "v", "hi"),
        AggSpec("count_distinct", "c", "d"),
    )
    state = GroupedAggregateState(by=("k",), specs=specs)
    bounds = np.linspace(0, full.n_rows, n_parts + 1).astype(int)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        state.consume_delta(full.slice(int(lo), int(hi)))
    got = state.state_frame()
    expected = group_aggregate(full, ["k"], list(specs))

    got_by_key = {
        k: (s, n, lo, hi)
        for k, s, n, lo, hi in zip(
            got.column("k").tolist(),
            got.column("__s__sum").tolist(),
            got.column("__n__count").tolist(),
            got.column("__lo__min").tolist(),
            got.column("__hi__max").tolist(),
        )
    }
    distinct = dict(
        zip(got.column("k").tolist(),
            state.distinct_counts(specs[4]).tolist())
    )
    for k, s, n, lo, hi, d in zip(
        expected.column("k").tolist(),
        expected.column("s").tolist(),
        expected.column("n").tolist(),
        expected.column("lo").tolist(),
        expected.column("hi").tolist(),
        expected.column("d").tolist(),
    ):
        gs, gn, glo, ghi = got_by_key[k]
        assert gs == pytest.approx(s, rel=1e-9, abs=1e-6)
        assert gn == n
        assert glo == pytest.approx(lo)
        assert ghi == pytest.approx(hi)
        assert distinct[k] == d
