"""Unit + property tests for the monomial growth model (paper §5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.growth import (
    GrowthModel,
    GrowthSnapshot,
    StreamingLogLogRegression,
)
from repro.errors import InferenceError


class TestStreamingRegression:
    def test_matches_polyfit(self):
        rng = np.random.default_rng(7)
        xs = rng.uniform(0.05, 1.0, size=40)
        ys = 3.0 * xs**0.7 * np.exp(rng.normal(0, 0.05, size=40))
        reg = StreamingLogLogRegression()
        for x, y in zip(xs, ys):
            reg.observe(x, y)
        slope, intercept = np.polyfit(np.log(xs), np.log(ys), 1)
        assert reg.slope == pytest.approx(slope, rel=1e-9)
        assert reg.intercept == pytest.approx(intercept, rel=1e-9)

    def test_exact_monomial_recovered(self):
        reg = StreamingLogLogRegression()
        for t in (0.1, 0.2, 0.4, 0.8):
            reg.observe(t, 5.0 * t**1.3)
        assert reg.slope == pytest.approx(1.3, rel=1e-9)
        assert np.exp(reg.intercept) == pytest.approx(5.0, rel=1e-9)
        assert reg.slope_variance == pytest.approx(0.0, abs=1e-12)

    def test_cannot_fit_single_point(self):
        reg = StreamingLogLogRegression()
        reg.observe(0.5, 2.0)
        assert not reg.can_fit()
        with pytest.raises(InferenceError):
            _ = reg.slope

    def test_cannot_fit_duplicate_x(self):
        reg = StreamingLogLogRegression()
        reg.observe(0.5, 2.0)
        reg.observe(0.5, 3.0)
        assert not reg.can_fit()

    def test_rejects_nonpositive(self):
        reg = StreamingLogLogRegression()
        with pytest.raises(InferenceError):
            reg.observe(0.0, 1.0)
        with pytest.raises(InferenceError):
            reg.observe(1.0, -1.0)

    def test_slope_variance_increases_with_noise(self):
        rng = np.random.default_rng(3)
        xs = np.linspace(0.1, 1.0, 30)

        def fitted_var(noise):
            reg = StreamingLogLogRegression()
            for x in xs:
                reg.observe(x, 2.0 * x * np.exp(rng.normal(0, noise)))
            return reg.slope_variance

        assert fitted_var(0.3) > fitted_var(0.01)


class TestGrowthModel:
    def test_prior_until_two_observations(self):
        model = GrowthModel(prior_w=1.0)
        assert model.snapshot().w == 1.0
        model.observe(0.1, 10.0)
        assert model.snapshot().w == 1.0  # still prior
        model.observe(0.2, 20.0)
        assert model.snapshot().w == pytest.approx(1.0)  # fitted linear

    def test_fits_sublinear(self):
        model = GrowthModel(prior_w=1.0)
        for t in (0.1, 0.2, 0.4, 0.8):
            model.observe(t, 4.0 * t**0.5)
        assert model.snapshot().w == pytest.approx(0.5, rel=1e-9)

    def test_pinned_ignores_observations(self):
        model = GrowthModel.pinned(0.0)
        model.observe(0.1, 5.0)
        model.observe(0.5, 50.0)
        snap = model.snapshot()
        assert snap.w == 0.0
        assert snap.var_w == 0.0
        assert model.is_pinned

    def test_pinned_outside_bounds_rejected(self):
        with pytest.raises(InferenceError):
            GrowthModel(fixed_w=5.0)

    def test_clamping(self):
        model = GrowthModel(prior_w=1.0, bounds=(0.0, 2.0))
        # extremely steep growth -> clamped to 2
        for t, y in ((0.1, 1e-4), (0.9, 1e4)):
            model.observe(t, y)
        assert model.snapshot().w == 2.0

    def test_t_one_and_zero_cardinality_skipped(self):
        model = GrowthModel(prior_w=1.0)
        model.observe(1.0, 100.0)  # no information
        model.observe(0.5, 0.0)  # would break log
        assert model.snapshot().n_observations == 0

    def test_scale_factor(self):
        snap = GrowthSnapshot(w=1.0, var_w=0.0, n_observations=5)
        assert snap.scale(0.25) == pytest.approx(4.0)
        assert snap.scale(1.0) == pytest.approx(1.0)
        zero = GrowthSnapshot(w=0.0, var_w=0.0, n_observations=5)
        assert zero.scale(0.1) == pytest.approx(1.0)

    def test_scale_rejects_bad_t(self):
        snap = GrowthSnapshot(w=1.0, var_w=0.0, n_observations=1)
        with pytest.raises(InferenceError):
            snap.scale(0.0)
        with pytest.raises(InferenceError):
            snap.scale(1.5)


@given(
    w=st.floats(0.0, 2.0),
    c=st.floats(0.5, 100.0),
    ts=st.lists(
        st.floats(0.02, 0.99), min_size=3, max_size=15, unique=True
    ),
)
@settings(max_examples=60, deadline=None)
def test_growth_model_recovers_noiseless_monomial(w, c, ts):
    """Property: on noiseless monomial data the fitted power equals w."""
    model = GrowthModel(prior_w=0.0)
    for t in ts:
        model.observe(t, c * t**w)
    snap = model.snapshot()
    assert snap.w == pytest.approx(w, abs=1e-6)
    # And the implied final-cardinality estimate x/t^w recovers c exactly.
    t_last = ts[-1]
    estimate = (c * t_last**w) * snap.scale(t_last)
    assert estimate == pytest.approx(c, rel=1e-6)
