"""The slot-based incremental merge must be indistinguishable from a
from-scratch recompute: streaming any partitioning of a frame through
``GroupedAggregateState.consume_delta`` yields the same ``state_frame()``
(and distinct counts / quantiles) as one-shot ``group_aggregate`` over
the whole input."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import AggSpec, DataFrame, group_aggregate
from repro.dataframe.groupby import Grouper, group_codes
from repro.core.mergeable import CARDINALITY_COLUMN
from repro.core.state import GroupedAggregateState
from repro.errors import QueryError


def stream(state: GroupedAggregateState, frame: DataFrame,
           n_parts: int) -> None:
    bounds = np.linspace(0, frame.n_rows, n_parts + 1).astype(int)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        state.consume_delta(frame.slice(int(lo), int(hi)))


class TestGrouper:
    def test_slots_are_stable_across_partials(self):
        g = Grouper(("k",))
        f1 = DataFrame({"k": np.array(["b", "a", "b"])})
        f2 = DataFrame({"k": np.array(["c", "a"])})
        c1 = g.encode(f1)
        c2 = g.encode(f2)
        # "a" keeps the slot it got in the first partial.
        by_key = dict(zip(f1.column("k").tolist(), c1.tolist()))
        assert c2.tolist() == [g.n_groups - 1, by_key["a"]]
        assert g.n_groups == 3
        assert g.key_frame().column("k").tolist() == ["a", "b", "c"]

    def test_matches_one_shot_group_codes_groupings(self):
        rng = np.random.default_rng(5)
        frame = DataFrame(
            {
                "a": rng.integers(0, 5, size=100).astype(np.int64),
                "b": np.array([f"s{i % 4}" for i in range(100)]),
            }
        )
        g = Grouper(("a", "b"))
        codes = np.concatenate(
            [g.encode(frame.slice(i, i + 20)) for i in range(0, 100, 20)]
        )
        one_shot, _keys, n = group_codes(frame, ["a", "b"])
        assert g.n_groups == n
        # Same partition structure: rows share a slot iff they share a
        # one-shot group code.
        pairs = set(zip(codes.tolist(), one_shot.tolist()))
        assert len(pairs) == n
        assert len({p[0] for p in pairs}) == n

    def test_empty_frame_is_noop(self):
        g = Grouper(("k",))
        out = g.encode(DataFrame({"k": np.array([], dtype=np.int64)}))
        assert out.tolist() == []
        assert g.n_groups == 0
        with pytest.raises(QueryError):
            g.key_frame()

    def test_requires_keys(self):
        with pytest.raises(QueryError):
            Grouper(())


def make_frame(n=200, seed=9):
    rng = np.random.default_rng(seed)
    return DataFrame(
        {
            "k": rng.integers(0, 12, size=n).astype(np.int64),
            "s": np.array([f"g{i % 3}" for i in range(n)]),
            "v": rng.normal(10.0, 5.0, size=n),
            "c": rng.integers(0, 6, size=n).astype(np.int64),
        }
    )


ALL_SPECS = (
    AggSpec("sum", "v", "sum_v"),
    AggSpec("count", None, "n"),
    AggSpec("avg", "v", "avg_v"),
    AggSpec("min", "v", "lo"),
    AggSpec("max", "v", "hi"),
    AggSpec("var", "v", "s2"),
    AggSpec("count_distinct", "c", "d"),
    AggSpec("median", "v", "med"),
)


@pytest.mark.parametrize("n_parts", [1, 3, 8, 17])
def test_slot_merge_equals_recompute(n_parts):
    frame = make_frame()
    state = GroupedAggregateState(by=("k", "s"), specs=ALL_SPECS)
    stream(state, frame, n_parts)
    got = state.state_frame()
    expected = group_aggregate(frame, ["k", "s"], list(ALL_SPECS))

    # state_frame rows are key-sorted; group_aggregate's np.unique order
    # is the same lexicographic order, so rows align positionally.
    assert got.column("k").tolist() == expected.column("k").tolist()
    assert got.column("s").tolist() == expected.column("s").tolist()

    np.testing.assert_allclose(
        got.column("__sum_v__sum"), expected.column("sum_v"), rtol=1e-9
    )
    np.testing.assert_allclose(
        got.column("__n__count"), expected.column("n")
    )
    np.testing.assert_allclose(
        got.column("__avg_v__sum") / got.column("__avg_v__count"),
        expected.column("avg_v"), rtol=1e-9,
    )
    np.testing.assert_allclose(
        got.column("__lo__min"), expected.column("lo")
    )
    np.testing.assert_allclose(
        got.column("__hi__max"), expected.column("hi")
    )
    count = got.column("__s2__count")
    with np.errstate(invalid="ignore", divide="ignore"):
        m2 = (got.column("__s2__sumsq")
              - got.column("__s2__sum") ** 2 / count)
        var = m2 / (count - 1)  # NaN for singleton groups, like the kernel
    np.testing.assert_allclose(
        var, expected.column("s2"), rtol=1e-6, atol=1e-8
    )
    np.testing.assert_allclose(
        state.distinct_counts(ALL_SPECS[6]), expected.column("d")
    )
    np.testing.assert_allclose(
        state.sample_quantiles(ALL_SPECS[7]), expected.column("med"),
        rtol=1e-9,
    )
    np.testing.assert_allclose(
        got.column(CARDINALITY_COLUMN),
        np.asarray(expected.column("n"), dtype=np.float64),
    )


def test_nan_values_behave_like_recompute():
    """Genuine NaN measure values: sums skip them, min/max propagate
    exactly as the one-shot kernels do."""
    frame = DataFrame(
        {
            "k": np.array([0, 0, 1, 1, 2], dtype=np.int64),
            "v": np.array([1.0, np.nan, 2.0, 3.0, np.nan]),
        }
    )
    specs = (AggSpec("sum", "v", "s"), AggSpec("min", "v", "lo"))
    state = GroupedAggregateState(by=("k",), specs=specs)
    stream(state, frame, 3)
    got = state.state_frame()
    expected = group_aggregate(frame, ["k"], list(specs))
    np.testing.assert_allclose(got.column("__s__sum"),
                               expected.column("s"))
    np.testing.assert_allclose(got.column("__lo__min"),
                               expected.column("lo"), equal_nan=True)


def test_nan_group_keys_merge_into_one_slot():
    """NaN group keys across partials collapse into a single group (the
    np.unique equal_nan behavior of the one-shot path), for both the
    vectorized single-key path and the tuple-dict multi-key path — and
    count_distinct's pair re-encode must not allocate beyond the state
    arrays."""
    frame = DataFrame(
        {
            "k": np.array([1.0, np.nan, np.nan, 1.0]),
            "g": np.array(["x", "y", "y", "x"]),
            "v": np.array([1.0, 2.0, 3.0, 4.0]),
            "c": np.array([7, 8, 8, 9], dtype=np.int64),
        }
    )
    specs = (AggSpec("sum", "v", "s"),
             AggSpec("count_distinct", "c", "d"))
    for by in (("k",), ("k", "g")):
        state = GroupedAggregateState(by=by, specs=specs)
        stream(state, frame, 4)  # one NaN key per partial
        got = state.state_frame()
        expected = group_aggregate(frame, list(by), list(specs))
        assert got.n_rows == expected.n_rows == 2
        np.testing.assert_allclose(got.column("__s__sum"),
                                   expected.column("s"))
        np.testing.assert_allclose(state.distinct_counts(specs[1]),
                                   expected.column("d"))


def test_global_aggregate_slots():
    frame = make_frame(n=50)
    specs = (AggSpec("sum", "v", "s"), AggSpec("count", None, "n"))
    state = GroupedAggregateState(by=(), specs=specs)
    stream(state, frame, 5)
    got = state.state_frame()
    assert got.n_rows == 1
    assert got.column("__s__sum")[0] == pytest.approx(
        float(np.sum(frame.column("v")))
    )
    assert got.column("__n__count")[0] == frame.n_rows


def test_version_reset_clears_slots():
    frame = make_frame(n=60)
    state = GroupedAggregateState(
        by=("k",), specs=(AggSpec("sum", "v", "s"),)
    )
    stream(state, frame, 4)
    n_before = state.n_groups
    assert n_before > 0
    state.consume_snapshot(frame.slice(0, 10))
    expected = group_aggregate(frame.slice(0, 10), ["k"],
                               [AggSpec("sum", "v", "s")])
    got = state.state_frame()
    assert got.n_rows == expected.n_rows
    np.testing.assert_allclose(got.column("__s__sum"),
                               expected.column("s"))
    assert state.version == 2


@given(
    st.lists(
        st.tuples(st.integers(0, 6), st.floats(-100, 100),
                  st.integers(0, 4)),
        min_size=1, max_size=60,
    ),
    st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_property_slot_merge_equals_recompute(data, n_parts):
    ks, vs, cs = zip(*data)
    frame = DataFrame(
        {"k": np.array(ks, dtype=np.int64), "v": np.array(vs),
         "c": np.array(cs, dtype=np.int64)}
    )
    specs = (
        AggSpec("sum", "v", "s"),
        AggSpec("min", "v", "lo"),
        AggSpec("max", "v", "hi"),
        AggSpec("count_distinct", "c", "d"),
    )
    state = GroupedAggregateState(by=("k",), specs=specs)
    stream(state, frame, n_parts)
    got = state.state_frame()
    expected = group_aggregate(frame, ["k"], list(specs))
    assert got.column("k").tolist() == expected.column("k").tolist()
    np.testing.assert_allclose(got.column("__s__sum"),
                               expected.column("s"),
                               rtol=1e-9, atol=1e-6)
    np.testing.assert_allclose(got.column("__lo__min"),
                               expected.column("lo"))
    np.testing.assert_allclose(got.column("__hi__max"),
                               expected.column("hi"))
    np.testing.assert_allclose(state.distinct_counts(specs[3]),
                               expected.column("d"))
