"""Unit tests for the incremental order-statistic state (tentpole of the
quantile rework): exact mode must be bit-identical to a one-shot
``group_quantile`` over any partitioning; sketch mode must bound memory
and stay close to the exact answer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orderstat import OrderStatState, QUANTILE_MODES
from repro.core.state import GroupedAggregateState
from repro.dataframe import AggSpec, DataFrame
from repro.dataframe.groupby import group_quantile, slot_quantile
from repro.errors import QueryError


def one_shot(slots, values, n_slots, q):
    return group_quantile(
        np.asarray(slots, dtype=np.int64), n_slots,
        np.asarray(values, dtype=np.float64), q,
    )


class TestSlotQuantileKernel:
    def test_matches_group_quantile(self):
        rng = np.random.default_rng(3)
        codes = np.sort(rng.integers(0, 5, size=200).astype(np.int64))
        vals = rng.normal(size=200)
        order = np.lexsort((vals, codes))
        sorted_vals = vals[order]
        offsets = np.concatenate(
            ([0], np.cumsum(np.bincount(codes, minlength=5)))
        )
        for q in (0.0, 0.3, 0.5, 1.0):
            np.testing.assert_array_equal(
                slot_quantile(sorted_vals, offsets, q),
                group_quantile(codes, 5, vals, q),
            )

    def test_empty_slots_are_nan(self):
        out = slot_quantile(np.array([1.0]), np.array([0, 0, 1, 1]), 0.5)
        assert np.isnan(out[0]) and out[1] == 1.0 and np.isnan(out[2])

    def test_all_empty(self):
        out = slot_quantile(np.empty(0), np.array([0, 0, 0]), 0.5)
        assert np.isnan(out).all()


class TestExactMode:
    def test_mode_validation(self):
        with pytest.raises(QueryError, match="quantile_mode"):
            OrderStatState(mode="tdigest")
        assert set(QUANTILE_MODES) == {"exact", "sketch"}

    def test_single_slot_merge(self):
        state = OrderStatState()
        rng = np.random.default_rng(0)
        values = rng.normal(size=300)
        for start in range(0, 300, 30):
            chunk = values[start:start + 30]
            state.consume(np.zeros(30, dtype=np.int64), chunk)
            # interleave reads: every read consolidates pending runs
            got = state.quantiles(0.5, 1)
            assert got[0] == np.median(values[:start + 30])
        assert state.n_values == 300

    def test_out_of_order_slots_and_new_slots_mid_stream(self):
        rng = np.random.default_rng(1)
        slots = rng.integers(0, 40, size=2000).astype(np.int64)
        vals = rng.normal(size=2000)
        state = OrderStatState()
        # slot 39 appears only late; early reads see fewer slots
        early = slots[:500] % 20
        state.consume(early, vals[:500])
        np.testing.assert_array_equal(
            state.quantiles(0.7, 20), one_shot(early, vals[:500], 20, 0.7)
        )
        state.consume(slots[500:], vals[500:])
        combined_slots = np.concatenate([early, slots[500:]])
        np.testing.assert_array_equal(
            state.quantiles(0.7, 40),
            one_shot(combined_slots, vals, 40, 0.7),
        )

    def test_duplicate_values_and_nan(self):
        state = OrderStatState()
        slots = np.array([0, 0, 0, 0, 1, 1], dtype=np.int64)
        vals = np.array([2.0, 2.0, np.nan, 1.0, np.nan, np.nan])
        state.consume(slots[:3], vals[:3])
        state.consume(slots[3:], vals[3:])
        for q in (0.0, 0.5, 1.0):
            np.testing.assert_array_equal(
                state.quantiles(q, 2), one_shot(slots, vals, 2, q)
            )

    def test_read_between_snapshots_is_cached(self):
        state = OrderStatState()
        state.consume(np.zeros(5, dtype=np.int64), np.arange(5.0))
        first = state.quantiles(0.5, 1)
        again = state.quantiles(0.5, 1)
        np.testing.assert_array_equal(first, again)
        assert not state._pending  # consolidation happened exactly once

    def test_empty_partial_is_noop(self):
        state = OrderStatState()
        state.consume(np.empty(0, dtype=np.int64), np.empty(0))
        assert state.n_values == 0
        assert np.isnan(state.quantiles(0.5, 3)).all()


@given(
    values=st.lists(
        st.tuples(st.integers(0, 5),
                  st.one_of(st.just(float("nan")),
                            st.floats(-1e6, 1e6))),
        min_size=1, max_size=150,
    ),
    n_parts=st.integers(1, 7),
    q=st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
    reads=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_property_exact_merge_invariance(values, n_parts, q, reads):
    """Any partitioning, with or without interleaved reads, is
    bit-identical to the one-shot kernel over the whole stream."""
    slots = np.array([s for s, _ in values], dtype=np.int64)
    vals = np.array([v for _, v in values], dtype=np.float64)
    n_slots = int(slots.max()) + 1
    state = OrderStatState()
    bounds = np.linspace(0, len(vals), n_parts + 1).astype(int)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        state.consume(slots[lo:hi], vals[lo:hi])
        if reads and hi > 0:
            state.quantiles(q, int(slots[:hi].max()) + 1)
    np.testing.assert_array_equal(
        state.quantiles(q, n_slots), one_shot(slots, vals, n_slots, q)
    )


class TestSketchMode:
    def test_small_stream_is_exact(self):
        """Below capacity the reservoir holds everything: sketch == exact."""
        state = OrderStatState(mode="sketch", sketch_size=64)
        slots = np.array([0, 1, 0, 1, 0], dtype=np.int64)
        vals = np.array([3.0, 10.0, 1.0, 20.0, 2.0])
        state.consume(slots, vals)
        np.testing.assert_array_equal(
            state.quantiles(0.5, 2), one_shot(slots, vals, 2, 0.5)
        )

    def test_memory_is_bounded(self):
        state = OrderStatState(mode="sketch", sketch_size=128)
        rng = np.random.default_rng(2)
        for _ in range(50):
            state.consume(
                rng.integers(0, 4, size=1000).astype(np.int64),
                rng.normal(size=1000),
            )
        assert state.n_values == 50_000
        assert state.nbytes() <= 4 * 128 * 8 * 2  # reservoir matrix only

    def test_approximates_true_quantile(self):
        state = OrderStatState(mode="sketch", sketch_size=1024)
        rng = np.random.default_rng(3)
        vals = rng.normal(0.0, 1.0, size=60_000)
        for start in range(0, len(vals), 5000):
            chunk = vals[start:start + 5000]
            state.consume(
                np.zeros(len(chunk), dtype=np.int64), chunk
            )
        got = state.quantiles(0.5, 1)[0]
        assert got == pytest.approx(float(np.median(vals)), abs=0.15)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        slots = rng.integers(0, 3, size=5000).astype(np.int64)
        vals = rng.normal(size=5000)
        results = []
        for _ in range(2):
            state = OrderStatState(mode="sketch", sketch_size=32, seed=9)
            state.consume(slots, vals)
            results.append(state.quantiles(0.5, 3))
        np.testing.assert_array_equal(results[0], results[1])

    def test_sketch_size_validation(self):
        with pytest.raises(QueryError, match="sketch_size"):
            OrderStatState(mode="sketch", sketch_size=1)


class TestStateIntegration:
    def test_state_threads_quantile_mode(self):
        rng = np.random.default_rng(5)
        frame = DataFrame(
            {
                "k": rng.integers(0, 3, size=4000).astype(np.int64),
                "v": rng.normal(size=4000),
            }
        )
        spec = AggSpec("median", "v", "med")
        exact = GroupedAggregateState(by=("k",), specs=(spec,))
        sketch = GroupedAggregateState(
            by=("k",), specs=(spec,), quantile_mode="sketch",
            sketch_size=512,
        )
        for start in range(0, 4000, 500):
            part = frame.slice(start, start + 500)
            exact.consume_delta(part)
            sketch.consume_delta(part)
        e = exact.sample_quantiles(spec)
        s = sketch.sample_quantiles(spec)
        np.testing.assert_allclose(s, e, atol=0.25)

    def test_state_rejects_bad_mode(self):
        with pytest.raises(QueryError, match="quantile_mode"):
            GroupedAggregateState(
                by=("k",), specs=(AggSpec("median", "v", "m"),),
                quantile_mode="approx",
            )

    def test_snapshot_reset_resets_orderstat(self):
        spec = AggSpec("median", "v", "m")
        state = GroupedAggregateState(by=(), specs=(spec,))
        state.consume_delta(DataFrame({"v": np.full(10, 100.0)}))
        assert state.sample_quantiles(spec)[0] == 100.0
        state.consume_snapshot(DataFrame({"v": np.array([1.0, 3.0])}))
        assert state.sample_quantiles(spec)[0] == 2.0
