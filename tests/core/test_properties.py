"""Unit tests for progress and stream-info properties (paper §4.1)."""

import pytest

from repro.core.properties import Delivery, Progress, StreamInfo
from repro.dataframe import DType, Field, Schema
from repro.errors import ExecutionError


class TestProgress:
    def test_start_and_advance(self):
        p = Progress.start("lineitem", 100)
        assert p.fraction == 0.0
        p = p.advanced("lineitem", 25)
        assert p.fraction == pytest.approx(0.25)
        assert not p.is_complete

    def test_completion(self):
        p = Progress.start("t", 10).advanced("t", 10)
        assert p.fraction == 1.0
        assert p.is_complete

    def test_done_cannot_exceed_total(self):
        with pytest.raises(ExecutionError, match="exceeds total"):
            Progress(done={"t": 11}, total={"t": 10})

    def test_done_requires_total(self):
        with pytest.raises(ExecutionError, match="no total"):
            Progress(done={"t": 1}, total={})

    def test_fraction_is_min_of_incomplete_sources(self):
        p = Progress(
            done={"build": 50, "probe": 10},
            total={"build": 50, "probe": 100},
        )
        # build side complete -> probe drives t
        assert p.fraction == pytest.approx(0.10)

    def test_fraction_all_complete(self):
        p = Progress(done={"a": 5, "b": 3}, total={"a": 5, "b": 3})
        assert p.fraction == 1.0

    def test_fraction_empty(self):
        assert Progress().fraction == 1.0

    def test_weighted_fraction(self):
        p = Progress(
            done={"a": 50, "b": 10}, total={"a": 50, "b": 100}
        )
        assert p.weighted_fraction == pytest.approx(60 / 150)

    def test_merged_takes_max_done(self):
        a = Progress(done={"t": 30}, total={"t": 100})
        b = Progress(done={"t": 50}, total={"t": 100})
        merged = a.merged(b)
        assert merged.done["t"] == 50

    def test_merged_unions_sources(self):
        a = Progress(done={"x": 1}, total={"x": 10})
        b = Progress(done={"y": 2}, total={"y": 20})
        merged = a.merged(b)
        assert set(merged.total) == {"x", "y"}
        assert merged.fraction == pytest.approx(0.1)

    def test_merged_conflicting_totals(self):
        a = Progress(done={"t": 1}, total={"t": 10})
        b = Progress(done={"t": 1}, total={"t": 20})
        with pytest.raises(ExecutionError, match="conflicting totals"):
            a.merged(b)

    def test_immutability(self):
        p = Progress.start("t", 10)
        with pytest.raises(TypeError):
            p.done["t"] = 5  # type: ignore[index]

    def test_repr(self):
        p = Progress.start("t", 10).advanced("t", 5)
        assert "t=0.500" in repr(p)


class TestStreamInfo:
    def schema(self):
        return Schema([Field("okey", DType.INT64),
                       Field("qty", DType.FLOAT64)])

    def test_clustered_on_subset(self):
        info = StreamInfo(self.schema(), clustering_key=("okey",))
        assert info.clustered_on(("okey",))
        assert info.clustered_on(("okey", "qty"))
        assert not info.clustered_on(("qty",))

    def test_unclustered_never_matches(self):
        info = StreamInfo(self.schema())
        assert not info.clustered_on(("okey",))

    def test_default_delivery(self):
        info = StreamInfo(self.schema())
        assert info.delivery == Delivery.DELTA
