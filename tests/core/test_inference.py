"""Unit tests for growth-based inference (paper §5.1) including the §4.2
worked example's extrinsic states and the §6 CI columns."""

import numpy as np
import pytest

from repro.dataframe import AggSpec, DataFrame
from repro.core.ci import CIConfig, sigma_column
from repro.core.growth import GrowthModel
from repro.core.inference import AggregateInference
from repro.core.state import GroupedAggregateState


def students_partition_1():
    return DataFrame(
        {"id": np.array([1, 2, 3]), "state": np.array(["IL", "IL", "MI"])}
    )


def students_partition_2():
    return DataFrame(
        {"id": np.array([4, 5]), "state": np.array(["IL", "MI"])}
    )


def count_by_state_inference():
    state = GroupedAggregateState(
        by=("state",), specs=(AggSpec("count", None, "n"),)
    )
    inference = AggregateInference(GrowthModel(prior_w=1.0))
    return state, inference


class TestPaperStudentExample:
    """§4.2: with 1/10 partitions read and counts [(IL,2),(MI,1)], the
    extrinsic state scales to [(IL,20),(MI,10)]; after 2/10 partitions and
    merged counts [(IL,3),(MI,2)] it becomes [(IL,15),(MI,10)]."""

    def test_first_partition_scaling(self):
        state, inference = count_by_state_inference()
        state.consume_delta(students_partition_1())
        out = inference.infer(state, t=0.1)
        got = dict(zip(out.column("state").tolist(),
                       out.column("n").tolist()))
        assert got == {"IL": 20.0, "MI": 10.0}

    def test_second_partition_scaling(self):
        state, inference = count_by_state_inference()
        state.consume_delta(students_partition_1())
        inference.observe(state, 0.1)
        state.consume_delta(students_partition_2())
        out = inference.infer(state, t=0.2)
        got = dict(zip(out.column("state").tolist(),
                       out.column("n").tolist()))
        assert got == {"IL": 15.0, "MI": 10.0}

    def test_output_schema_kinds(self):
        state, inference = count_by_state_inference()
        state.consume_delta(students_partition_1())
        out = inference.infer(state, t=0.1)
        assert out.schema.kind("state").value == "constant"
        assert out.schema.kind("n").value == "mutable"


class TestConvergenceAtFullProgress:
    """2C convergence: at t=1 every estimator returns the exact value."""

    def full_state(self, specs):
        frame = DataFrame(
            {
                "g": np.array(["a", "a", "b"]),
                "v": np.array([2.0, 4.0, 10.0]),
            }
        )
        state = GroupedAggregateState(by=("g",), specs=specs)
        state.consume_delta(frame)
        return state

    def test_all_aggregates_exact(self):
        specs = (
            AggSpec("sum", "v", "s"),
            AggSpec("count", None, "n"),
            AggSpec("avg", "v", "m"),
            AggSpec("min", "v", "lo"),
            AggSpec("max", "v", "hi"),
            AggSpec("count_distinct", "v", "d"),
        )
        state = self.full_state(specs)
        inference = AggregateInference(GrowthModel(prior_w=1.0))
        out = inference.infer(state, t=1.0)
        row = {
            g: vals
            for g, *vals in zip(
                out.column("g").tolist(),
                out.column("s").tolist(),
                out.column("n").tolist(),
                out.column("m").tolist(),
                out.column("lo").tolist(),
                out.column("hi").tolist(),
                out.column("d").tolist(),
            )
        }
        assert row["a"] == [6.0, 2.0, 3.0, 2.0, 4.0, 2.0]
        assert row["b"] == [10.0, 1.0, 10.0, 10.0, 10.0, 1.0]


class TestScalingBehaviour:
    def test_sum_scales_with_prior_linear_growth(self):
        state = GroupedAggregateState(
            by=(), specs=(AggSpec("sum", "v", "s"),)
        )
        state.consume_delta(DataFrame({"v": np.array([5.0, 5.0])}))
        inference = AggregateInference(GrowthModel(prior_w=1.0))
        out = inference.infer(state, t=0.25)
        assert out.column("s")[0] == pytest.approx(40.0)  # 10 / 0.25

    def test_pinned_zero_growth_never_scales(self):
        state = GroupedAggregateState(
            by=("g",), specs=(AggSpec("sum", "v", "s"),)
        )
        state.consume_delta(
            DataFrame({"g": np.array(["x"]), "v": np.array([7.0])})
        )
        inference = AggregateInference(GrowthModel.pinned(0.0))
        out = inference.infer(state, t=0.1)
        assert out.column("s")[0] == pytest.approx(7.0)

    def test_avg_is_scale_free(self):
        state = GroupedAggregateState(
            by=(), specs=(AggSpec("avg", "v", "m"),)
        )
        state.consume_delta(DataFrame({"v": np.array([2.0, 4.0])}))
        inference = AggregateInference(GrowthModel(prior_w=1.0))
        out = inference.infer(state, t=0.2)
        assert out.column("m")[0] == pytest.approx(3.0)

    def test_fitted_growth_drives_scaling(self):
        # feed sub-linear growth (w=0.5): at t the mean card is 8*sqrt(t)
        state = GroupedAggregateState(
            by=(), specs=(AggSpec("count", None, "n"),)
        )
        inference = AggregateInference(GrowthModel(prior_w=1.0))
        for t, rows in ((0.25, 4), (0.5, 2), (0.75, 2)):
            # cumulative rows ~ 8*sqrt(t): 4, ~5.66, ~6.93 -> feed deltas
            state.consume_delta(
                DataFrame({"v": np.zeros(rows)})
            )
            inference.observe(state, t)
        snap = inference.growth.snapshot()
        assert 0.2 < snap.w < 0.8  # clearly sub-linear

    def test_count_column_scales_like_sum(self):
        f = DataFrame({"v": np.array([1.0, np.nan, 3.0, 4.0])})
        state = GroupedAggregateState(
            by=(), specs=(AggSpec("count", "v", "n"),)
        )
        state.consume_delta(f)
        inference = AggregateInference(GrowthModel(prior_w=1.0))
        out = inference.infer(state, t=0.5)
        # 3 non-nan over 4 rows; xhat = 8 -> 3/4*8 = 6
        assert out.column("n")[0] == pytest.approx(6.0)


class TestCIColumns:
    def make(self, specs, track_moments=True):
        state = GroupedAggregateState(
            by=("g",), specs=specs, track_moments=track_moments
        )
        frame = DataFrame(
            {
                "g": np.array(["a"] * 50),
                "v": np.arange(50, dtype=np.float64),
            }
        )
        state.consume_delta(frame)
        inference = AggregateInference(
            GrowthModel(prior_w=1.0), ci=CIConfig(0.95)
        )
        # two growth observations so Var(w) is defined (still 0 noise)
        inference.observe(state, 0.25)
        return state, inference

    def test_sigma_columns_emitted(self):
        state, inference = self.make((AggSpec("sum", "v", "s"),))
        out = inference.infer(state, t=0.25)
        assert sigma_column("s") in out.column_names
        assert np.isfinite(out.column(sigma_column("s"))[0])

    def test_sum_sigma_positive_when_values_vary(self):
        state, inference = self.make((AggSpec("sum", "v", "s"),))
        out = inference.infer(state, t=0.25)
        assert out.column(sigma_column("s"))[0] > 0.0

    def test_avg_sigma_matches_clt_with_fpc(self):
        state, inference = self.make((AggSpec("avg", "v", "m"),))
        out = inference.infer(state, t=0.25)
        values = np.arange(50, dtype=np.float64)
        # CLT standard error shrunk by the finite-population factor
        expected = np.sqrt(np.var(values, ddof=1) / 50 * (1 - 0.25))
        assert out.column(sigma_column("m"))[0] == pytest.approx(
            expected, rel=1e-9
        )

    def test_sigma_vanishes_at_completion(self):
        state, inference = self.make(
            (AggSpec("sum", "v", "s"), AggSpec("avg", "v", "m"),
             AggSpec("count", None, "n"))
        )
        out = inference.infer(state, t=1.0)
        assert out.column(sigma_column("s"))[0] == pytest.approx(0.0)
        assert out.column(sigma_column("m"))[0] == pytest.approx(0.0)
        assert out.column(sigma_column("n"))[0] == pytest.approx(0.0)

    def test_min_sigma_is_nan(self):
        state, inference = self.make((AggSpec("min", "v", "lo"),))
        out = inference.infer(state, t=0.25)
        assert np.isnan(out.column(sigma_column("lo"))[0])

    def test_count_distinct_sigma_finite(self):
        state, inference = self.make(
            (AggSpec("count_distinct", "v", "d"),)
        )
        out = inference.infer(state, t=0.25)
        assert np.isfinite(out.column(sigma_column("d"))[0])
        assert out.column(sigma_column("d"))[0] >= 0.0
