"""NaN-semantics parity: the incremental state must be indistinguishable
from the one-shot ``group_aggregate`` path wherever NaN appears in the
measure column (satellite of the order-statistics rework):

* ``count_distinct`` — NaN is one distinct value (np.unique equal_nan);
* ``median``/``quantile`` — NaN joins the multiset, sorts last, and
  counts toward the quantile position (so upper quantiles go NaN);
* ``min``/``max`` — NaN poisons the group (numpy min/max propagation),
  including all-NaN groups.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import AggSpec, DataFrame, group_aggregate
from repro.core.state import GroupedAggregateState


def stream(state, frame, n_parts):
    bounds = np.linspace(0, frame.n_rows, n_parts + 1).astype(int)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        state.consume_delta(frame.slice(int(lo), int(hi)))


def nan_frame():
    """Groups exercising every NaN corner: mixed NaN, all-NaN, NaN-free,
    and duplicate NaN for the distinct counter."""
    return DataFrame(
        {
            "k": np.array(
                [0, 0, 0, 1, 1, 2, 2, 2, 3], dtype=np.int64
            ),
            "v": np.array(
                [1.0, np.nan, 2.0,          # mixed
                 np.nan, np.nan,            # all-NaN group
                 5.0, 3.0, 4.0,             # NaN-free
                 np.nan],                   # singleton NaN
            ),
        }
    )


@pytest.mark.parametrize("n_parts", [1, 2, 4, 9])
def test_count_distinct_nan_is_one_value(n_parts):
    frame = nan_frame()
    spec = AggSpec("count_distinct", "v", "d")
    state = GroupedAggregateState(by=("k",), specs=(spec,))
    stream(state, frame, n_parts)
    expected = group_aggregate(frame, ["k"], [spec])
    np.testing.assert_allclose(
        state.distinct_counts(spec), expected.column("d")
    )
    # Explicit: the all-NaN group counts exactly one distinct value.
    assert dict(zip(expected.column("k").tolist(),
                    expected.column("d").tolist()))[1] == 1


@pytest.mark.parametrize("n_parts", [1, 3, 9])
@pytest.mark.parametrize("q", [0.0, 0.25, 0.5, 0.9, 1.0])
def test_quantile_nan_groups_match_one_shot(n_parts, q):
    frame = nan_frame()
    spec = AggSpec("quantile", "v", "qv", param=q)
    state = GroupedAggregateState(by=("k",), specs=(spec,))
    stream(state, frame, n_parts)
    expected = group_aggregate(frame, ["k"], [spec])
    np.testing.assert_array_equal(
        state.sample_quantiles(spec), expected.column("qv")
    )


@pytest.mark.parametrize("n_parts", [1, 2, 9])
def test_min_max_all_nan_groups_match_one_shot(n_parts):
    frame = nan_frame()
    specs = (AggSpec("min", "v", "lo"), AggSpec("max", "v", "hi"))
    state = GroupedAggregateState(by=("k",), specs=specs)
    stream(state, frame, n_parts)
    got = state.state_frame()
    expected = group_aggregate(frame, ["k"], list(specs))
    np.testing.assert_array_equal(got.column("__lo__min"),
                                  expected.column("lo"))
    np.testing.assert_array_equal(got.column("__hi__max"),
                                  expected.column("hi"))
    # The all-NaN group is NaN, not a merge identity leak.
    assert np.isnan(got.column("__lo__min")[1])
    assert np.isnan(got.column("__hi__max")[1])


@given(
    data=st.lists(
        st.tuples(
            st.integers(0, 3),
            st.one_of(st.just(float("nan")), st.floats(-100, 100)),
        ),
        min_size=1, max_size=50,
    ),
    n_parts=st.integers(1, 5),
    q=st.sampled_from([0.1, 0.5, 1.0]),
)
@settings(max_examples=60, deadline=None)
def test_property_nan_parity(data, n_parts, q):
    ks, vs = zip(*data)
    frame = DataFrame(
        {"k": np.array(ks, dtype=np.int64), "v": np.array(vs)}
    )
    specs = (
        AggSpec("quantile", "v", "qv", param=q),
        AggSpec("min", "v", "lo"),
        AggSpec("max", "v", "hi"),
        AggSpec("count_distinct", "v", "d"),
    )
    state = GroupedAggregateState(by=("k",), specs=specs)
    stream(state, frame, n_parts)
    got = state.state_frame()
    expected = group_aggregate(frame, ["k"], list(specs))
    np.testing.assert_array_equal(
        state.sample_quantiles(specs[0]), expected.column("qv")
    )
    np.testing.assert_array_equal(got.column("__lo__min"),
                                  expected.column("lo"))
    np.testing.assert_array_equal(got.column("__hi__max"),
                                  expected.column("hi"))
    np.testing.assert_allclose(state.distinct_counts(specs[3]),
                               expected.column("d"))
