"""Property tests: the incremental JoinIndex probe path must produce the
same output as the one-shot hash_join kernel for every ``how`` mode —
including duplicate keys, multi-column keys, string keys, and empty
probe/build sides — and must stay equivalent when the probe side is
streamed through the prebuilt index partition by partition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import DataFrame, JoinIndex, hash_join
from repro.dataframe.join import JOIN_METHODS
from repro.errors import QueryError, SchemaError


def assert_same_rows(got: DataFrame, expected: DataFrame) -> None:
    """Row-set equality (order-insensitive; join outputs are unordered)."""
    assert tuple(got.column_names) == tuple(expected.column_names)
    assert got.n_rows == expected.n_rows
    assert sorted(map(repr, got.to_records())) == sorted(
        map(repr, expected.to_records())
    )


def left_frame():
    return DataFrame(
        {
            "k": np.array([3, 1, 4, 1, 5, 9, 2, 6, 5, 3], dtype=np.int64),
            "lv": np.arange(10, dtype=np.float64),
        }
    )


def right_frame():
    return DataFrame(
        {
            "k": np.array([1, 1, 2, 3, 7, 5], dtype=np.int64),
            "rv": np.array([10.0, 11.0, 12.0, 13.0, 14.0, 15.0]),
            "tag": np.array(["a", "b", "c", "d", "e", "f"]),
        }
    )


@pytest.mark.parametrize("how", JOIN_METHODS)
def test_probe_matches_hash_join_duplicate_keys(how):
    left, right = left_frame(), right_frame()
    index = JoinIndex(right, ["k"])
    got = index.probe(left, ["k"], how=how)
    expected = hash_join(left, right, ["k"], ["k"], how=how)
    assert_same_rows(got, expected)


@pytest.mark.parametrize("how", JOIN_METHODS)
def test_probe_matches_hash_join_multi_column(how):
    rng = np.random.default_rng(3)
    left = DataFrame(
        {
            "a": rng.integers(0, 4, size=40).astype(np.int64),
            "b": np.array([f"s{i % 3}" for i in range(40)]),
            "lv": np.arange(40, dtype=np.float64),
        }
    )
    right = DataFrame(
        {
            "a": rng.integers(0, 4, size=15).astype(np.int64),
            "b": np.array([f"s{i % 4}" for i in range(15)]),
            "rv": np.arange(15, dtype=np.float64),
        }
    )
    index = JoinIndex(right, ["a", "b"])
    got = index.probe(left, ["a", "b"], how=how)
    expected = hash_join(left, right, ["a", "b"], ["a", "b"], how=how)
    assert_same_rows(got, expected)


@pytest.mark.parametrize("how", JOIN_METHODS)
def test_probe_matches_hash_join_string_keys(how):
    left = DataFrame(
        {
            "name": np.array(["x", "yy", "zzz", "x", "missing", "yy"]),
            "lv": np.arange(6, dtype=np.int64),
        }
    )
    right = DataFrame(
        {
            "name": np.array(["yy", "x", "x", "w"]),
            "rv": np.arange(4, dtype=np.int64),
        }
    )
    index = JoinIndex(right, ["name"])
    got = index.probe(left, ["name"], how=how)
    expected = hash_join(left, right, ["name"], ["name"], how=how)
    assert_same_rows(got, expected)


@pytest.mark.parametrize("how", JOIN_METHODS)
def test_empty_probe_side(how):
    right = right_frame()
    empty = left_frame().head(0)
    index = JoinIndex(right, ["k"])
    got = index.probe(empty, ["k"], how=how)
    expected = hash_join(empty, right, ["k"], ["k"], how=how)
    assert got.n_rows == 0
    assert tuple(got.column_names) == tuple(expected.column_names)


@pytest.mark.parametrize("how", JOIN_METHODS)
def test_empty_build_side(how):
    left = left_frame()
    empty = right_frame().head(0)
    index = JoinIndex(empty, ["k"])
    got = index.probe(left, ["k"], how=how)
    expected = hash_join(left, empty, ["k"], ["k"], how=how)
    assert_same_rows(got, expected)


def test_mixed_numeric_key_dtypes():
    """int probe keys against a float build dictionary (and vice versa)."""
    left = DataFrame(
        {"k": np.array([1, 2, 3], dtype=np.int64),
         "lv": np.arange(3, dtype=np.float64)}
    )
    right = DataFrame(
        {"k": np.array([2.0, 3.0, 9.5]), "rv": np.arange(3.0)}
    )
    got = JoinIndex(right, ["k"]).probe_inner(left, ["k"])
    expected = hash_join(left, right, ["k"], ["k"])
    assert_same_rows(got, expected)
    got_rev = JoinIndex(left, ["k"]).probe_inner(right, ["k"])
    expected_rev = hash_join(right, left, ["k"], ["k"])
    assert_same_rows(got_rev, expected_rev)


@pytest.mark.parametrize("how", JOIN_METHODS)
def test_nan_keys_match_hash_join(how):
    """hash_join's shared factorization collapses NaNs into one key
    (np.unique equal_nan); the index probe must agree."""
    left = DataFrame(
        {"k": np.array([1.0, np.nan, 2.0, np.nan]),
         "lv": np.arange(4, dtype=np.float64)}
    )
    right = DataFrame(
        {"k": np.array([np.nan, 1.0, 3.0]), "rv": np.arange(3.0)}
    )
    index = JoinIndex(right, ["k"])
    got = index.probe(left, ["k"], how=how)
    expected = hash_join(left, right, ["k"], ["k"], how=how)
    assert_same_rows(got, expected)


def test_incompatible_key_dtypes_raise():
    left = DataFrame({"k": np.array(["a", "b"]), "lv": np.arange(2)})
    right = DataFrame({"k": np.array([1, 2], dtype=np.int64),
                       "rv": np.arange(2)})
    index = JoinIndex(right, ["k"])
    with pytest.raises(SchemaError):
        index.probe_inner(left, ["k"])


def test_requires_key_columns():
    with pytest.raises(QueryError):
        JoinIndex(right_frame(), [])
    index = JoinIndex(right_frame(), ["k"])
    with pytest.raises(QueryError):
        index.probe_inner(left_frame(), ["k", "lv"])
    with pytest.raises(QueryError):
        index.probe(left_frame(), ["k"], how="outer")


def test_match_counts_against_reference():
    left, right = left_frame(), right_frame()
    index = JoinIndex(right, ["k"])
    counts = index.match_counts(left, ["k"])
    build_keys = right.column("k").tolist()
    expected = [build_keys.count(k) for k in left.column("k").tolist()]
    assert counts.tolist() == expected


def test_streamed_probe_partitions_equal_one_shot():
    """Probing partition-by-partition through one prebuilt index must
    concatenate to the one-shot join — the streaming-operator contract."""
    rng = np.random.default_rng(11)
    left = DataFrame(
        {
            "k": rng.integers(0, 20, size=200).astype(np.int64),
            "lv": np.arange(200, dtype=np.float64),
        }
    )
    right = DataFrame(
        {
            "k": rng.integers(0, 25, size=60).astype(np.int64),
            "rv": np.arange(60, dtype=np.float64),
        }
    )
    index = JoinIndex(right, ["k"])
    for how in ("inner", "left", "semi", "anti"):
        parts = [
            index.probe(left.slice(i, i + 25), ["k"], how=how)
            for i in range(0, 200, 25)
        ]
        got = DataFrame.concat(parts)
        expected = hash_join(left, right, ["k"], ["k"], how=how)
        assert_same_rows(got, expected)


join_rows = st.lists(
    st.tuples(st.integers(-3, 6), st.integers(-3, 6)),
    min_size=0, max_size=50,
)


@given(join_rows, join_rows)
@settings(max_examples=60, deadline=None)
def test_property_probe_equivalence(left_keys, right_keys):
    """Random multi-column integer keys, every how mode."""
    left = DataFrame(
        {
            "a": np.array([a for a, _ in left_keys] or [], dtype=np.int64),
            "b": np.array([b for _, b in left_keys] or [], dtype=np.int64),
            "lv": np.arange(len(left_keys), dtype=np.float64),
        }
    )
    right = DataFrame(
        {
            "a": np.array([a for a, _ in right_keys] or [],
                          dtype=np.int64),
            "b": np.array([b for _, b in right_keys] or [],
                          dtype=np.int64),
            "rv": np.arange(len(right_keys), dtype=np.float64),
        }
    )
    index = JoinIndex(right, ["a", "b"])
    for how in JOIN_METHODS:
        got = index.probe(left, ["a", "b"], how=how)
        expected = hash_join(left, right, ["a", "b"], ["a", "b"], how=how)
        assert_same_rows(got, expected)
