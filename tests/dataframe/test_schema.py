"""Unit tests for the schema model (fields, dtypes, attribute kinds)."""

import numpy as np
import pytest

from repro.dataframe.schema import (
    AttributeKind,
    DType,
    Field,
    Schema,
    dtype_of,
    numpy_dtype,
)
from repro.errors import ColumnNotFoundError, SchemaError


def make_schema():
    return Schema(
        [
            Field("k", DType.INT64),
            Field("name", DType.STRING),
            Field("total", DType.FLOAT64, AttributeKind.MUTABLE),
        ]
    )


class TestDType:
    def test_numeric_flags(self):
        assert DType.INT64.is_numeric
        assert DType.FLOAT64.is_numeric
        assert DType.DATE.is_numeric
        assert not DType.STRING.is_numeric
        assert not DType.BOOL.is_numeric

    @pytest.mark.parametrize(
        "arr,expected",
        [
            (np.array([1, 2]), DType.INT64),
            (np.array([1.5]), DType.FLOAT64),
            (np.array([True]), DType.BOOL),
            (np.array(["a"]), DType.STRING),
            (np.array([1], dtype=np.uint32), DType.INT64),
        ],
    )
    def test_dtype_of(self, arr, expected):
        assert dtype_of(arr) == expected

    def test_dtype_of_rejects_complex(self):
        with pytest.raises(SchemaError):
            dtype_of(np.array([1j]))

    def test_numpy_dtype_roundtrip(self):
        assert numpy_dtype(DType.INT64) == np.int64
        assert numpy_dtype(DType.DATE) == np.int64
        assert numpy_dtype(DType.FLOAT64) == np.float64
        assert numpy_dtype(DType.BOOL) == np.bool_


class TestField:
    def test_kind_transitions(self):
        f = Field("x", DType.FLOAT64)
        assert f.kind == AttributeKind.CONSTANT
        m = f.as_mutable()
        assert m.kind == AttributeKind.MUTABLE
        assert m.as_constant().kind == AttributeKind.CONSTANT
        assert f.kind == AttributeKind.CONSTANT  # original untouched

    def test_renamed(self):
        f = Field("x", DType.INT64).renamed("y")
        assert f.name == "y"
        assert f.dtype == DType.INT64


class TestSchema:
    def test_basic_accessors(self):
        s = make_schema()
        assert len(s) == 3
        assert s.names == ("k", "name", "total")
        assert s.field("total").kind == AttributeKind.MUTABLE
        assert s.dtype("name") == DType.STRING
        assert "k" in s
        assert "missing" not in s

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Field("a", DType.INT64), Field("a", DType.FLOAT64)])

    def test_missing_field_raises(self):
        with pytest.raises(ColumnNotFoundError):
            make_schema().field("nope")

    def test_mutable_names(self):
        s = make_schema()
        assert s.mutable_names == ("total",)
        assert s.has_mutable
        assert not Schema([Field("a", DType.INT64)]).has_mutable

    def test_select_preserves_order(self):
        s = make_schema().select(["total", "k"])
        assert s.names == ("total", "k")

    def test_rename(self):
        s = make_schema().rename({"k": "key"})
        assert s.names == ("key", "name", "total")
        assert s.field("key").dtype == DType.INT64

    def test_with_field_appends_and_replaces(self):
        s = make_schema().with_field(Field("extra", DType.BOOL))
        assert s.names[-1] == "extra"
        replaced = s.with_field(Field("k", DType.STRING))
        assert replaced.dtype("k") == DType.STRING
        assert len(replaced) == 4

    def test_drop(self):
        s = make_schema().drop(["name"])
        assert s.names == ("k", "total")
        with pytest.raises(ColumnNotFoundError):
            make_schema().drop(["nope"])

    def test_mark_mutable(self):
        s = make_schema().mark_mutable(["k"])
        assert s.field("k").kind == AttributeKind.MUTABLE

    def test_same_layout_ignores_kind(self):
        a = make_schema()
        b = make_schema().mark_mutable(["k", "name"])
        assert a.same_layout(b)
        assert a != b
        assert a == make_schema()

    def test_repr_marks_mutable(self):
        assert "total: float64*" in repr(make_schema())
