"""Unit tests for date helpers."""

import numpy as np
import pytest

from repro.dataframe.dates import (
    add_months,
    add_years,
    date,
    date_str,
    dates,
    years_of,
)


class TestRoundTrip:
    def test_epoch(self):
        assert date("1970-01-01") == 0
        assert date_str(0) == "1970-01-01"

    @pytest.mark.parametrize(
        "iso", ["1992-01-02", "1995-06-17", "1998-12-01", "2000-02-29"]
    )
    def test_roundtrip(self, iso):
        assert date_str(date(iso)) == iso

    def test_ordering(self):
        assert date("1994-01-01") < date("1994-01-02") < date("1995-01-01")

    def test_vectorized(self):
        arr = dates(["1970-01-01", "1970-01-11"])
        assert arr.tolist() == [0, 10]
        assert arr.dtype == np.int64


class TestIntervalArithmetic:
    def test_add_months_simple(self):
        assert date_str(add_months(date("1993-07-01"), 3)) == "1993-10-01"

    def test_add_months_year_rollover(self):
        assert date_str(add_months(date("1993-11-15"), 3)) == "1994-02-15"

    def test_add_months_clamps_day(self):
        assert date_str(add_months(date("1993-01-31"), 1)) == "1993-02-28"
        assert date_str(add_months(date("1996-01-31"), 1)) == "1996-02-29"

    def test_add_months_negative(self):
        assert date_str(add_months(date("1994-03-31"), -1)) == "1994-02-28"

    def test_add_years(self):
        assert date_str(add_years(date("1994-01-01"), 1)) == "1995-01-01"
        assert date_str(add_years(date("1996-02-29"), 1)) == "1997-02-28"

    def test_tpch_q1_predicate_shape(self):
        # l_shipdate <= date '1998-12-01' - interval '90' day
        cutoff = date("1998-12-01") - 90
        assert date_str(cutoff) == "1998-09-02"


class TestYearExtraction:
    def test_years_of(self):
        arr = dates(["1992-12-31", "1993-01-01", "1997-06-15"])
        assert years_of(arr).tolist() == [1992, 1993, 1997]

    def test_years_of_epoch_boundary(self):
        assert years_of(np.array([0, 364, 365])).tolist() == [
            1970, 1970, 1971]
