"""Unit + property tests for group-by kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import AggSpec, DataFrame
from repro.dataframe.groupby import (
    factorize,
    global_aggregate,
    group_aggregate,
    group_codes,
    group_count,
    group_max,
    group_min,
    group_nunique,
    group_sum,
    group_var_components,
    merge_var_components,
)
from repro.dataframe.schema import AttributeKind
from repro.errors import QueryError, SchemaError


@pytest.fixture
def sales():
    return DataFrame(
        {
            "state": np.array(["IL", "IL", "MI", "IL", "MI", "CA"]),
            "city": np.array(["c1", "c1", "d1", "c2", "d1", "e1"]),
            "amount": np.array([10.0, 20.0, 5.0, 7.0, 3.0, 100.0]),
            "qty": np.array([1, 2, 3, 4, 5, 6]),
        }
    )


class TestAggSpec:
    def test_validates_function(self):
        with pytest.raises(QueryError, match="unknown aggregate"):
            AggSpec("mode", "x", "m")

    def test_count_allows_no_column(self):
        spec = AggSpec("count", None, "n")
        assert spec.column is None

    def test_non_count_requires_column(self):
        with pytest.raises(QueryError, match="requires a column"):
            AggSpec("sum", None, "s")


class TestFactorize:
    def test_roundtrip(self):
        codes, uniques = factorize(np.array(["b", "a", "b", "c"]))
        assert uniques.tolist() == ["a", "b", "c"]
        assert (uniques[codes] == np.array(["b", "a", "b", "c"])).all()

    def test_ints(self):
        codes, uniques = factorize(np.array([5, 5, 1]))
        assert uniques.tolist() == [1, 5]
        assert codes.tolist() == [1, 1, 0]


class TestGroupCodes:
    def test_single_key(self, sales):
        codes, keys, n = group_codes(sales, ["state"])
        assert n == 3
        assert sorted(keys.column("state").tolist()) == ["CA", "IL", "MI"]
        # every row's code maps back to its own key value
        for row, code in enumerate(codes):
            assert keys.column("state")[code] == sales.column("state")[row]

    def test_multi_key(self, sales):
        codes, keys, n = group_codes(sales, ["state", "city"])
        assert n == 4
        pairs = set(zip(keys.column("state").tolist(),
                        keys.column("city").tolist()))
        assert pairs == {("IL", "c1"), ("IL", "c2"), ("MI", "d1"),
                         ("CA", "e1")}
        assert len(codes) == sales.n_rows

    def test_empty_frame(self):
        empty = DataFrame({"k": np.array([], dtype=np.int64)})
        codes, keys, n = group_codes(empty, ["k"])
        assert n == 0
        assert len(codes) == 0
        assert keys.n_rows == 0

    def test_requires_keys(self, sales):
        with pytest.raises(QueryError):
            group_codes(sales, [])


class TestKernels:
    def test_group_sum_skips_nan(self):
        codes = np.array([0, 0, 1])
        vals = np.array([1.0, np.nan, 2.0])
        assert group_sum(codes, 2, vals).tolist() == [1.0, 2.0]

    def test_group_count_with_valid_mask(self):
        codes = np.array([0, 0, 1])
        valid = np.array([True, False, True])
        assert group_count(codes, 2, valid).tolist() == [1, 1]

    def test_group_min_max(self):
        codes = np.array([1, 0, 1, 0])
        vals = np.array([5.0, 2.0, 3.0, 8.0])
        assert group_min(codes, 2, vals).tolist() == [2.0, 3.0]
        assert group_max(codes, 2, vals).tolist() == [8.0, 5.0]

    def test_group_min_missing_group_is_nan(self):
        codes = np.array([0])
        out = group_min(codes, 2, np.array([1.0]))
        assert out[0] == 1.0
        assert np.isnan(out[1])

    def test_group_nunique(self):
        codes = np.array([0, 0, 0, 1, 1])
        vals = np.array([7, 7, 8, 9, 9])
        assert group_nunique(codes, 2, vals).tolist() == [2, 1]

    def test_group_nunique_empty(self):
        assert group_nunique(
            np.empty(0, dtype=np.int64), 3, np.empty(0)
        ).tolist() == [0, 0, 0]

    def test_var_components_match_numpy(self):
        codes = np.array([0, 0, 0, 1, 1])
        vals = np.array([1.0, 2.0, 4.0, 10.0, 20.0])
        count, total, m2 = group_var_components(codes, 2, vals)
        assert count.tolist() == [3.0, 2.0]
        assert total.tolist() == [7.0, 30.0]
        np.testing.assert_allclose(
            m2[0], np.var(vals[:3]) * 3, rtol=1e-12
        )
        np.testing.assert_allclose(
            m2[1], np.var(vals[3:]) * 2, rtol=1e-12
        )

    def test_merge_var_components_equals_direct(self):
        rng = np.random.default_rng(0)
        a_vals = rng.normal(size=50)
        b_vals = rng.normal(size=70)
        a = group_var_components(np.zeros(50, dtype=np.int64), 1, a_vals)
        b = group_var_components(np.zeros(70, dtype=np.int64), 1, b_vals)
        n, s, m2 = merge_var_components(a, b)
        direct = group_var_components(
            np.zeros(120, dtype=np.int64), 1, np.concatenate([a_vals, b_vals])
        )
        np.testing.assert_allclose(n, direct[0])
        np.testing.assert_allclose(s, direct[1])
        np.testing.assert_allclose(m2, direct[2], rtol=1e-9)


class TestGroupAggregate:
    def test_basic_sums(self, sales):
        out = group_aggregate(
            sales, ["state"], [AggSpec("sum", "amount", "total")]
        )
        d = dict(zip(out.column("state").tolist(),
                     out.column("total").tolist()))
        assert d == {"IL": 37.0, "MI": 8.0, "CA": 100.0}

    def test_aggregates_marked_mutable(self, sales):
        out = group_aggregate(
            sales, ["state"], [AggSpec("sum", "amount", "total")]
        )
        assert out.schema.kind("total") == AttributeKind.MUTABLE
        assert out.schema.kind("state") == AttributeKind.CONSTANT

    def test_multiple_aggs(self, sales):
        out = group_aggregate(
            sales,
            ["state"],
            [
                AggSpec("count", None, "n"),
                AggSpec("avg", "amount", "mean_amt"),
                AggSpec("min", "qty", "min_q"),
                AggSpec("max", "qty", "max_q"),
                AggSpec("count_distinct", "city", "cities"),
            ],
        )
        row = {
            s: (n, m, mn, mx, c)
            for s, n, m, mn, mx, c in zip(
                out.column("state").tolist(),
                out.column("n").tolist(),
                out.column("mean_amt").tolist(),
                out.column("min_q").tolist(),
                out.column("max_q").tolist(),
                out.column("cities").tolist(),
            )
        }
        assert row["IL"] == (3, 37.0 / 3, 1.0, 4.0, 2)
        assert row["MI"] == (2, 4.0, 3.0, 5.0, 1)
        assert row["CA"] == (1, 100.0, 6.0, 6.0, 1)

    def test_var_and_stddev(self, sales):
        out = group_aggregate(
            sales,
            ["state"],
            [AggSpec("var", "amount", "v"), AggSpec("stddev", "amount", "s")],
        )
        d = dict(zip(out.column("state").tolist(), out.column("v").tolist()))
        np.testing.assert_allclose(
            d["MI"], np.var([5.0, 3.0], ddof=1), rtol=1e-12
        )
        s = dict(zip(out.column("state").tolist(), out.column("s").tolist()))
        np.testing.assert_allclose(s["MI"], np.sqrt(d["MI"]), rtol=1e-12)
        # single-row group: sample variance undefined -> NaN
        assert np.isnan(d["CA"])

    def test_requires_specs(self, sales):
        with pytest.raises(QueryError):
            group_aggregate(sales, ["state"], [])

    def test_duplicate_aliases_rejected(self, sales):
        with pytest.raises(SchemaError, match="duplicate"):
            group_aggregate(
                sales,
                ["state"],
                [AggSpec("sum", "amount", "x"), AggSpec("count", None, "x")],
            )

    def test_count_skips_nan_column(self):
        f = DataFrame(
            {"k": np.array([1, 1, 2]), "v": np.array([1.0, np.nan, 2.0])}
        )
        out = group_aggregate(f, ["k"], [AggSpec("count", "v", "n")])
        assert out.column("n").tolist() == [1, 1]


class TestGlobalAggregate:
    def test_single_row(self, sales):
        out = global_aggregate(
            sales,
            [AggSpec("sum", "amount", "total"), AggSpec("count", None, "n")],
        )
        assert out.n_rows == 1
        assert out.column("total")[0] == pytest.approx(145.0)
        assert out.column("n")[0] == 6

    def test_empty_frame(self):
        f = DataFrame({"v": np.array([], dtype=np.float64)})
        out = global_aggregate(
            f, [AggSpec("sum", "v", "s"), AggSpec("count", None, "n")]
        )
        assert out.column("s")[0] == 0.0
        assert out.column("n")[0] == 0


# ---------------------------------------------------------------------------
# Property tests: the mergeability law op(d1 ∪ d2) == op(d1) ⊎ op(d2)
# (paper §4.3) for the bincount-based kernels.
# ---------------------------------------------------------------------------

group_values = st.lists(
    st.tuples(st.integers(0, 5), st.floats(-100, 100)), min_size=1,
    max_size=60,
)


@given(group_values, group_values)
@settings(max_examples=60, deadline=None)
def test_sum_is_mergeable(part_a, part_b):
    def frame(rows):
        ks, vs = zip(*rows)
        return DataFrame({"k": np.array(ks), "v": np.array(vs)})

    both = group_aggregate(
        DataFrame.concat([frame(part_a), frame(part_b)]),
        ["k"],
        [AggSpec("sum", "v", "s"), AggSpec("count", None, "n")],
    )
    merged: dict[int, tuple[float, int]] = {}
    for rows in (part_a, part_b):
        agg = group_aggregate(
            frame(rows), ["k"], [AggSpec("sum", "v", "s"),
                                 AggSpec("count", None, "n")]
        )
        for k, s, n in zip(agg.column("k").tolist(), agg.column("s").tolist(),
                           agg.column("n").tolist()):
            prev = merged.get(k, (0.0, 0))
            merged[k] = (prev[0] + s, prev[1] + n)
    for k, s, n in zip(both.column("k").tolist(), both.column("s").tolist(),
                       both.column("n").tolist()):
        assert merged[k][1] == n
        assert merged[k][0] == pytest.approx(s, rel=1e-9, abs=1e-7)


@given(group_values)
@settings(max_examples=60, deadline=None)
def test_group_sum_matches_python(rows):
    ks, vs = zip(*rows)
    f = DataFrame({"k": np.array(ks), "v": np.array(vs)})
    out = group_aggregate(f, ["k"], [AggSpec("sum", "v", "s")])
    expected: dict[int, float] = {}
    for k, v in rows:
        expected[k] = expected.get(k, 0.0) + v
    got = dict(zip(out.column("k").tolist(), out.column("s").tolist()))
    assert set(got) == set(expected)
    for k in expected:
        assert got[k] == pytest.approx(expected[k], rel=1e-9, abs=1e-7)
