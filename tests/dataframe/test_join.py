"""Unit + property tests for join kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import DataFrame, DType, hash_join, merge_join
from repro.dataframe.join import (
    anti_join_mask,
    inner_join_indices,
    match_counts,
    semi_join_mask,
    shared_codes,
)
from repro.errors import QueryError, SchemaError


@pytest.fixture
def orders():
    return DataFrame(
        {
            "okey": np.array([1, 2, 3, 4]),
            "cust": np.array([10, 20, 10, 30]),
            "total": np.array([5.0, 6.0, 7.0, 8.0]),
        }
    )


@pytest.fixture
def customers():
    return DataFrame(
        {
            "ckey": np.array([10, 20, 40]),
            "name": np.array(["alice", "bob", "dora"]),
        }
    )


class TestSharedCodes:
    def test_alignment(self):
        left = [np.array([1, 2, 3])]
        right = [np.array([3, 1])]
        lc, rc = shared_codes(left, right)
        assert lc[0] == rc[1]  # value 1
        assert lc[2] == rc[0]  # value 3

    def test_multi_column(self):
        lc, rc = shared_codes(
            [np.array([1, 1]), np.array(["a", "b"])],
            [np.array([1]), np.array(["b"])],
        )
        assert lc[1] == rc[0]
        assert lc[0] != rc[0]

    def test_incompatible_dtypes(self):
        with pytest.raises(SchemaError):
            shared_codes([np.array([1])], [np.array(["a"])])

    def test_int_float_compatible(self):
        lc, rc = shared_codes([np.array([1, 2])], [np.array([2.0])])
        assert lc[1] == rc[0]

    def test_requires_keys(self):
        with pytest.raises(QueryError):
            shared_codes([], [])


class TestIndexKernels:
    def test_inner_indices(self):
        li, ri = inner_join_indices(np.array([0, 1, 2]), np.array([1, 1, 3]))
        pairs = set(zip(li.tolist(), ri.tolist()))
        assert pairs == {(1, 0), (1, 1)}

    def test_inner_no_matches(self):
        li, ri = inner_join_indices(np.array([0]), np.array([9]))
        assert len(li) == 0 and len(ri) == 0

    def test_match_counts(self):
        counts = match_counts(np.array([5, 6, 7]), np.array([6, 6, 9]))
        assert counts.tolist() == [0, 2, 0]

    def test_semi_anti_masks(self):
        left = np.array([1, 2, 3])
        right = np.array([2, 2])
        assert semi_join_mask(left, right).tolist() == [False, True, False]
        assert anti_join_mask(left, right).tolist() == [True, False, True]


class TestHashJoin:
    def test_inner(self, orders, customers):
        out = hash_join(orders, customers, ["cust"], ["ckey"])
        assert out.n_rows == 3
        got = set(zip(out.column("okey").tolist(), out.column("name").tolist()))
        assert got == {(1, "alice"), (3, "alice"), (2, "bob")}
        # key column from the right side is dropped
        assert "ckey" not in out.column_names

    def test_inner_one_to_many(self, orders, customers):
        out = hash_join(customers, orders, ["ckey"], ["cust"])
        assert out.n_rows == 3
        alice_orders = {
            o for c, o in zip(out.column("name").tolist(),
                              out.column("okey").tolist())
            if c == "alice"
        }
        assert alice_orders == {1, 3}

    def test_left_join_fills(self, orders, customers):
        out = hash_join(orders, customers, ["cust"], ["ckey"], how="left")
        assert out.n_rows == 4
        by_okey = {
            k: n for k, n in zip(out.column("okey").tolist(),
                                 out.column("name").tolist())
        }
        assert by_okey[4] == ""  # unmatched string fill

    def test_left_join_numeric_promotion(self, customers, orders):
        out = hash_join(customers, orders, ["ckey"], ["cust"], how="left")
        assert out.schema.dtype("okey") == DType.FLOAT64
        dora = out.mask(out.column("name") == "dora")
        assert np.isnan(dora.column("okey")).all()

    def test_semi(self, orders, customers):
        out = hash_join(orders, customers, ["cust"], ["ckey"], how="semi")
        assert sorted(out.column("okey").tolist()) == [1, 2, 3]
        assert out.column_names == orders.column_names

    def test_anti(self, orders, customers):
        out = hash_join(orders, customers, ["cust"], ["ckey"], how="anti")
        assert out.column("okey").tolist() == [4]

    def test_unknown_method(self, orders, customers):
        with pytest.raises(QueryError, match="unknown join method"):
            hash_join(orders, customers, ["cust"], ["ckey"], how="outer")

    def test_name_collision_suffix(self):
        left = DataFrame({"k": np.array([1]), "v": np.array([1.0])})
        right = DataFrame({"k": np.array([1]), "v": np.array([2.0])})
        out = hash_join(left, right, ["k"], ["k"])
        assert out.column("v").tolist() == [1.0]
        assert out.column("v_right").tolist() == [2.0]

    def test_name_collision_failure(self):
        left = DataFrame(
            {"k": np.array([1]), "v": np.array([1.0]),
             "v_x": np.array([0.0])}
        )
        right = DataFrame({"k": np.array([1]), "v": np.array([2.0])})
        with pytest.raises(SchemaError, match="collides"):
            hash_join(left, right, ["k"], ["k"], suffix="_x")

    def test_multi_key_join(self):
        left = DataFrame(
            {"a": np.array([1, 1, 2]), "b": np.array(["x", "y", "x"]),
             "v": np.array([1.0, 2.0, 3.0])}
        )
        right = DataFrame(
            {"a": np.array([1, 2]), "b": np.array(["y", "x"]),
             "w": np.array([10.0, 20.0])}
        )
        out = hash_join(left, right, ["a", "b"], ["a", "b"])
        got = set(zip(out.column("v").tolist(), out.column("w").tolist()))
        assert got == {(2.0, 10.0), (3.0, 20.0)}

    def test_merge_join_equals_hash_join(self, orders, customers):
        a = hash_join(orders, customers, ["cust"], ["ckey"])
        b = merge_join(orders, customers, ["cust"], ["ckey"])
        assert a.equals(b)

    def test_empty_probe(self, customers):
        empty = DataFrame(
            {"cust": np.array([], dtype=np.int64)}
        )
        out = hash_join(empty, customers, ["cust"], ["ckey"])
        assert out.n_rows == 0
        assert "name" in out.column_names


# ---------------------------------------------------------------------------
# Property: the vectorized join equals a nested-loop reference join.
# ---------------------------------------------------------------------------

keys = st.lists(st.integers(0, 8), min_size=0, max_size=30)


@given(keys, keys)
@settings(max_examples=60, deadline=None)
def test_inner_join_matches_nested_loop(left_keys, right_keys):
    left = DataFrame(
        {"k": np.array(left_keys, dtype=np.int64),
         "lrow": np.arange(len(left_keys))}
    )
    right = DataFrame(
        {"k": np.array(right_keys, dtype=np.int64),
         "rrow": np.arange(len(right_keys))}
    )
    out = hash_join(left, right, ["k"], ["k"])
    got = sorted(zip(out.column("lrow").tolist(), out.column("rrow").tolist()))
    expected = sorted(
        (i, j)
        for i, lk in enumerate(left_keys)
        for j, rk in enumerate(right_keys)
        if lk == rk
    )
    assert got == expected


@given(keys, keys)
@settings(max_examples=60, deadline=None)
def test_semi_anti_partition_left(left_keys, right_keys):
    left = DataFrame({"k": np.array(left_keys, dtype=np.int64)})
    right = DataFrame({"k": np.array(right_keys, dtype=np.int64)})
    semi = hash_join(left, right, ["k"], ["k"], how="semi")
    anti = hash_join(left, right, ["k"], ["k"], how="anti")
    assert semi.n_rows + anti.n_rows == left.n_rows
    assert set(semi.column("k").tolist()).issubset(set(right_keys))
    assert not set(anti.column("k").tolist()) & set(right_keys)
