"""Unit tests for sort kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import DataFrame
from repro.dataframe.sort import sort_frame, sort_indices, top_k
from repro.errors import QueryError


@pytest.fixture
def frame():
    return DataFrame(
        {
            "g": np.array(["b", "a", "b", "a"]),
            "v": np.array([2.0, 9.0, 1.0, 9.0]),
            "i": np.array([0, 1, 2, 3]),
        }
    )


class TestSort:
    def test_single_key_ascending(self, frame):
        out = sort_frame(frame, ["v"])
        assert out.column("v").tolist() == [1.0, 2.0, 9.0, 9.0]

    def test_single_key_descending(self, frame):
        out = sort_frame(frame, ["v"], ascending=False)
        assert out.column("v").tolist() == [9.0, 9.0, 2.0, 1.0]

    def test_string_descending(self, frame):
        out = sort_frame(frame, ["g"], ascending=False)
        assert out.column("g").tolist() == ["b", "b", "a", "a"]

    def test_multi_key_mixed_direction(self, frame):
        out = sort_frame(frame, ["g", "v"], ascending=[True, False])
        assert out.column("g").tolist() == ["a", "a", "b", "b"]
        assert out.column("v").tolist() == [9.0, 9.0, 2.0, 1.0]

    def test_stability(self, frame):
        # v == 9.0 appears at input rows 1 and 3; stable sort keeps order
        out = sort_frame(frame, ["v"], ascending=False)
        assert out.column("i").tolist()[:2] == [1, 3]

    def test_requires_keys(self, frame):
        with pytest.raises(QueryError):
            sort_indices(frame, [])

    def test_flag_count_mismatch(self, frame):
        with pytest.raises(QueryError):
            sort_indices(frame, ["g"], ascending=[True, False])

    def test_top_k(self, frame):
        out = top_k(frame, ["v"], 2, ascending=False)
        assert out.column("v").tolist() == [9.0, 9.0]

    def test_top_k_beyond_length(self, frame):
        assert top_k(frame, ["v"], 100).n_rows == 4

    def test_bool_key(self):
        f = DataFrame({"b": np.array([True, False, True])})
        out = sort_frame(f, ["b"])
        assert out.column("b").tolist() == [False, True, True]


@given(st.lists(st.integers(-50, 50), min_size=0, max_size=50))
@settings(max_examples=50, deadline=None)
def test_sort_matches_python_sorted(values):
    if not values:
        return
    f = DataFrame({"v": np.array(values, dtype=np.int64)})
    out = sort_frame(f, ["v"])
    assert out.column("v").tolist() == sorted(values)
    out_desc = sort_frame(f, ["v"], ascending=False)
    assert out_desc.column("v").tolist() == sorted(values, reverse=True)
