"""Unit tests for the expression language."""

import numpy as np
import pytest

from repro.dataframe import DataFrame, col, date, lit, when
from repro.errors import ColumnNotFoundError


@pytest.fixture
def frame():
    return DataFrame(
        {
            "x": np.array([1.0, 2.0, 3.0, 4.0]),
            "y": np.array([10, 20, 30, 40]),
            "s": np.array(["apple", "banana", "cherry", "apricot"]),
            "d": np.array(
                [date("1994-01-01"), date("1994-06-15"),
                 date("1995-01-01"), date("1996-03-01")]
            ),
        }
    )


class TestArithmetic:
    def test_add_sub_mul_div(self, frame):
        assert (col("x") + 1).evaluate(frame).tolist() == [2, 3, 4, 5]
        assert (col("x") - col("x")).evaluate(frame).tolist() == [0] * 4
        assert (col("x") * 2).evaluate(frame).tolist() == [2, 4, 6, 8]
        assert (col("y") / 10).evaluate(frame).tolist() == [1, 2, 3, 4]

    def test_reflected_ops(self, frame):
        assert (1 + col("x")).evaluate(frame).tolist() == [2, 3, 4, 5]
        assert (10 - col("x")).evaluate(frame).tolist() == [9, 8, 7, 6]
        assert (2 * col("x")).evaluate(frame).tolist() == [2, 4, 6, 8]
        np.testing.assert_allclose(
            (12 / col("x")).evaluate(frame), [12, 6, 4, 3]
        )

    def test_neg_abs(self, frame):
        assert (-col("x")).evaluate(frame).tolist() == [-1, -2, -3, -4]
        assert (-col("x")).abs().evaluate(frame).tolist() == [1, 2, 3, 4]

    def test_tpch_revenue_shape(self, frame):
        # l_extendedprice * (1 - l_discount) pattern
        expr = col("x") * (lit(1.0) - col("x") / 10)
        np.testing.assert_allclose(
            expr.evaluate(frame), [0.9, 1.6, 2.1, 2.4]
        )


class TestComparisons:
    def test_ordering(self, frame):
        assert (col("x") > 2).evaluate(frame).tolist() == [
            False, False, True, True]
        assert (col("x") >= 2).evaluate(frame).tolist() == [
            False, True, True, True]
        assert (col("x") < 2).evaluate(frame).tolist() == [
            True, False, False, False]
        assert (col("x") <= 2).evaluate(frame).tolist() == [
            True, True, False, False]

    def test_equality(self, frame):
        assert (col("s") == "banana").evaluate(frame).tolist() == [
            False, True, False, False]
        assert (col("s") != "banana").evaluate(frame).tolist() == [
            True, False, True, True]

    def test_boolean_combinators(self, frame):
        both = (col("x") > 1) & (col("x") < 4)
        assert both.evaluate(frame).tolist() == [False, True, True, False]
        either = (col("x") <= 1) | (col("x") >= 4)
        assert either.evaluate(frame).tolist() == [True, False, False, True]
        assert (~(col("x") > 1)).evaluate(frame).tolist() == [
            True, False, False, False]


class TestStringOps:
    def test_startswith(self, frame):
        assert col("s").startswith("ap").evaluate(frame).tolist() == [
            True, False, False, True]

    def test_endswith(self, frame):
        assert col("s").endswith("y").evaluate(frame).tolist() == [
            False, False, True, False]

    def test_contains(self, frame):
        assert col("s").contains("an").evaluate(frame).tolist() == [
            False, True, False, False]

    def test_isin(self, frame):
        mask = col("s").isin(["apple", "cherry"]).evaluate(frame)
        assert mask.tolist() == [True, False, True, False]


class TestDatesAndCase:
    def test_between(self, frame):
        in_1994 = col("d").between(date("1994-01-01"), date("1995-01-01"))
        assert in_1994.evaluate(frame).tolist() == [True, True, False, False]

    def test_year(self, frame):
        assert col("d").year().evaluate(frame).tolist() == [
            1994, 1994, 1995, 1996]

    def test_when(self, frame):
        expr = when(col("x") > 2, col("y"), 0)
        assert expr.evaluate(frame).tolist() == [0, 0, 30, 40]

    def test_when_nested_columns(self, frame):
        expr = when(col("s") == "banana", col("x") * 100, col("x"))
        assert expr.evaluate(frame).tolist() == [1.0, 200.0, 3.0, 4.0]


class TestColumnsTracking:
    def test_columns_of_composite(self):
        expr = (col("a") + col("b")) > col("c")
        assert expr.columns() == frozenset({"a", "b", "c"})

    def test_literal_has_no_columns(self):
        assert lit(5).columns() == frozenset()

    def test_string_and_isin_track(self):
        assert col("s").contains("x").columns() == frozenset({"s"})
        assert col("s").isin(["a"]).columns() == frozenset({"s"})
        assert col("d").year().columns() == frozenset({"d"})
        assert when(col("a") > 1, col("b"), col("c")).columns() == frozenset(
            {"a", "b", "c"})

    def test_missing_column_raises_at_eval(self, frame):
        with pytest.raises(ColumnNotFoundError):
            col("nope").evaluate(frame)

    def test_repr_is_informative(self):
        text = repr((col("a") + 1) > 2)
        assert "col('a')" in text and ">" in text
