"""Unit tests for the columnar DataFrame."""

import numpy as np
import pytest

from repro.dataframe import AttributeKind, DataFrame, DType, Field, Schema
from repro.errors import ColumnNotFoundError, SchemaError


@pytest.fixture
def frame():
    return DataFrame(
        {
            "k": np.array([1, 2, 3, 4]),
            "name": np.array(["a", "b", "c", "d"]),
            "v": np.array([1.0, 2.0, 3.0, 4.0]),
        }
    )


class TestConstruction:
    def test_infers_schema(self, frame):
        assert frame.schema.dtype("k") == DType.INT64
        assert frame.schema.dtype("name") == DType.STRING
        assert frame.schema.dtype("v") == DType.FLOAT64
        assert frame.n_rows == 4
        assert len(frame) == 4

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError, match="length"):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_2d_rejected(self):
        with pytest.raises(SchemaError, match="1-D"):
            DataFrame({"a": np.zeros((2, 2))})

    def test_object_strings_normalized(self):
        f = DataFrame({"s": np.array(["x", "yy"], dtype=object)})
        assert f.column("s").dtype.kind == "U"

    def test_explicit_schema_name_mismatch(self):
        schema = Schema([Field("other", DType.INT64)])
        with pytest.raises(SchemaError, match="schema names"):
            DataFrame({"a": [1]}, schema=schema)

    def test_empty(self):
        schema = Schema([Field("a", DType.INT64), Field("s", DType.STRING)])
        f = DataFrame.empty(schema)
        assert f.n_rows == 0
        assert f.schema == schema

    def test_from_rows(self):
        f = DataFrame.from_rows(["a", "b"], [(1, "x"), (2, "y")])
        assert f.column("a").tolist() == [1, 2]
        assert f.column("b").tolist() == ["x", "y"]

    def test_from_rows_empty_rejected(self):
        with pytest.raises(SchemaError):
            DataFrame.from_rows(["a"], [])


class TestAccess:
    def test_column_and_getitem(self, frame):
        assert frame.column("k").tolist() == [1, 2, 3, 4]
        assert frame["k"].tolist() == [1, 2, 3, 4]
        assert "k" in frame and "zz" not in frame

    def test_missing_column(self, frame):
        with pytest.raises(ColumnNotFoundError, match="missing"):
            frame.column("missing")

    def test_row_and_records(self, frame):
        assert frame.row(1) == {"k": 2, "name": "b", "v": 2.0}
        assert frame.to_records()[0] == (1, "a", 1.0)
        assert list(frame.iter_rows())[-1] == (4, "d", 4.0)

    def test_to_pydict(self, frame):
        d = frame.to_pydict()
        assert d["name"] == ["a", "b", "c", "d"]

    def test_nbytes_positive(self, frame):
        assert frame.nbytes() > 0


class TestProjection:
    def test_select_orders(self, frame):
        out = frame.select(["v", "k"])
        assert out.column_names == ("v", "k")

    def test_drop(self, frame):
        assert frame.drop(["name"]).column_names == ("k", "v")

    def test_rename(self, frame):
        out = frame.rename({"k": "key"})
        assert out.column_names == ("key", "name", "v")
        with pytest.raises(ColumnNotFoundError):
            frame.rename({"zzz": "a"})

    def test_with_column_appends(self, frame):
        out = frame.with_column("w", frame["v"] * 2)
        assert out.column("w").tolist() == [2.0, 4.0, 6.0, 8.0]
        assert out.schema.kind("w") == AttributeKind.CONSTANT

    def test_with_column_replaces(self, frame):
        out = frame.with_column("v", np.zeros(4))
        assert out.column("v").tolist() == [0.0] * 4
        assert out.column_names == frame.column_names

    def test_with_column_mutable_kind(self, frame):
        out = frame.with_column("est", np.ones(4), kind=AttributeKind.MUTABLE)
        assert out.schema.kind("est") == AttributeKind.MUTABLE

    def test_with_column_wrong_length(self, frame):
        with pytest.raises(SchemaError, match="length"):
            frame.with_column("bad", np.zeros(3))

    def test_with_column_preserves_date_type(self):
        schema = Schema([Field("d", DType.DATE)])
        f = DataFrame({"d": np.array([10], dtype=np.int64)}, schema=schema)
        out = f.with_column("d", np.array([20], dtype=np.int64))
        assert out.schema.dtype("d") == DType.DATE


class TestRowSelection:
    def test_take(self, frame):
        out = frame.take(np.array([3, 0]))
        assert out.column("k").tolist() == [4, 1]
        assert out.schema == frame.schema

    def test_mask(self, frame):
        out = frame.mask(frame["v"] > 2.5)
        assert out.column("k").tolist() == [3, 4]

    def test_mask_wrong_length(self, frame):
        with pytest.raises(SchemaError):
            frame.mask(np.array([True]))

    def test_slice_and_head(self, frame):
        assert frame.slice(1, 3).column("k").tolist() == [2, 3]
        assert frame.head(2).n_rows == 2
        assert frame.head(0).n_rows == 0
        assert frame.head(100).n_rows == 4


class TestConcat:
    def test_concat_two(self, frame):
        out = DataFrame.concat([frame, frame])
        assert out.n_rows == 8
        assert out.column("k").tolist() == [1, 2, 3, 4, 1, 2, 3, 4]

    def test_concat_single_returns_same(self, frame):
        assert DataFrame.concat([frame]) is frame

    def test_concat_empty_list_rejected(self):
        with pytest.raises(SchemaError):
            DataFrame.concat([])

    def test_concat_layout_mismatch(self, frame):
        other = frame.rename({"k": "key"})
        with pytest.raises(SchemaError, match="layout"):
            DataFrame.concat([frame, other])

    def test_concat_string_width_promotion(self):
        a = DataFrame({"s": np.array(["x"])})
        b = DataFrame({"s": np.array(["longer-string"])})
        out = DataFrame.concat([a, b])
        assert out.column("s").tolist() == ["x", "longer-string"]


class TestEquality:
    def test_equals_exact(self, frame):
        assert frame.equals(frame.select(list(frame.column_names)))

    def test_equals_float_tolerance(self, frame):
        bumped = frame.with_column("v", frame["v"] + 1e-13)
        assert frame.equals(bumped)
        moved = frame.with_column("v", frame["v"] + 1.0)
        assert not frame.equals(moved)

    def test_equals_nan(self):
        a = DataFrame({"v": np.array([np.nan, 1.0])})
        assert a.equals(DataFrame({"v": np.array([np.nan, 1.0])}))

    def test_not_equals_layout(self, frame):
        assert not frame.equals(frame.drop(["v"]))
        assert not frame.equals(frame.head(2))

    def test_repr_contains_preview(self, frame):
        text = repr(frame)
        assert "DataFrame[4 rows]" in text
        assert "k:int64" in text

    def test_repr_truncates(self):
        f = DataFrame({"a": np.arange(20)})
        assert "more rows" in repr(f)
