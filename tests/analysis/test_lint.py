"""Invariant-linter rules: a positive and negative fixture per rule,
suppression comments, output formats, CLI exit codes — and the real
tree staying clean."""

import json
from pathlib import Path
import textwrap

import pytest

from repro import cli
from repro.analysis.lint import (
    ALL_RULES,
    lint_file,
    render_json,
    render_text,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write(tmp_path, relative, source):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _rules(findings):
    return sorted({f.rule for f in findings})


class TestHistoryConcat:
    def test_flags_concat_of_accumulated_state(self, tmp_path):
        path = _write(tmp_path, "state.py", """\
            import numpy as np

            class State:
                def consume_delta(self, part):
                    self.history.append(part)
                    return np.concatenate(self.history)
            """)
        findings = lint_file(path)
        assert _rules(findings) == ["history-concat"]
        assert "consume_delta" in findings[0].message

    def test_bounded_batch_concat_is_fine(self, tmp_path):
        # First argument is a list literal (state grown by one batch),
        # not the accumulated history itself.
        path = _write(tmp_path, "state.py", """\
            import numpy as np

            class State:
                def consume_delta(self, part):
                    self._card = np.concatenate([self._card, part])
                    return self._card
            """)
        assert lint_file(path) == []

    def test_concat_outside_consume_is_fine(self, tmp_path):
        path = _write(tmp_path, "state.py", """\
            import numpy as np

            class State:
                def finalize(self):
                    return np.concatenate(self.history)
            """)
        assert lint_file(path) == []


class TestLockSleep:
    def test_flags_sleep_under_lock(self, tmp_path):
        path = _write(tmp_path, "sched.py", """\
            import time

            class Scheduler:
                def step(self):
                    with self._lock:
                        time.sleep(0.1)
            """)
        findings = lint_file(path)
        assert _rules(findings) == ["lock-sleep"]

    def test_flags_file_io_under_condition(self, tmp_path):
        path = _write(tmp_path, "sched.py", """\
            class Scheduler:
                def step(self):
                    with self._cond:
                        open("state.json").read()
            """)
        findings = lint_file(path)
        assert _rules(findings) == ["lock-sleep"]

    def test_sleep_off_lock_is_fine(self, tmp_path):
        path = _write(tmp_path, "sched.py", """\
            import time

            class Scheduler:
                def step(self):
                    with self._lock:
                        work = self.queue.pop()
                    time.sleep(0.1)
                    return work
            """)
        assert lint_file(path) == []

    def test_non_lock_context_is_fine(self, tmp_path):
        path = _write(tmp_path, "io.py", """\
            import time

            def snapshot(path):
                with open(path) as handle:
                    time.sleep(0.01)
                    return handle.read()
            """)
        assert lint_file(path) == []


class TestBareBenchAssert:
    def test_flags_threshold_assert_in_benchmarks(self, tmp_path):
        path = _write(tmp_path, "benchmarks/bench_x.py", """\
            def test_speedup(guard):
                speedup = 2.0
                assert speedup > 1.5
            """)
        findings = lint_file(path)
        assert _rules(findings) == ["bare-bench-assert"]

    def test_guard_call_is_fine(self, tmp_path):
        path = _write(tmp_path, "benchmarks/bench_x.py", """\
            def test_speedup(guard):
                speedup = 2.0
                guard("speedup", speedup, 1.5, op=">")
            """)
        assert lint_file(path) == []

    def test_structural_asserts_are_fine(self, tmp_path):
        path = _write(tmp_path, "benchmarks/bench_x.py", """\
            def test_shape(rows):
                assert rows[-1] > rows[0]
                assert len(rows) == len(set(rows))
                assert rows, "rows must not be empty"
            """)
        assert lint_file(path) == []

    def test_same_assert_outside_benchmarks_is_fine(self, tmp_path):
        path = _write(tmp_path, "tests/test_x.py", """\
            def test_speedup():
                speedup = 2.0
                assert speedup > 1.5
            """)
        assert lint_file(path) == []


class TestUnseededRandom:
    def test_flags_wall_clock_in_retry(self, tmp_path):
        path = _write(tmp_path, "service/retry.py", """\
            import time

            def backoff_until(attempt):
                return time.time() + 2 ** attempt
            """)
        findings = lint_file(path)
        assert _rules(findings) == ["unseeded-random"]

    def test_flags_global_random_in_faults(self, tmp_path):
        path = _write(tmp_path, "testing/faults.py", """\
            import random

            def should_fail():
                return random.random() < 0.5
            """)
        findings = lint_file(path)
        assert _rules(findings) == ["unseeded-random"]

    def test_flags_unseeded_default_rng(self, tmp_path):
        path = _write(tmp_path, "testing/faults.py", """\
            import numpy as np

            def schedule():
                return np.random.default_rng()
            """)
        findings = lint_file(path)
        assert _rules(findings) == ["unseeded-random"]

    def test_seeded_rng_is_fine(self, tmp_path):
        path = _write(tmp_path, "testing/faults.py", """\
            import numpy as np

            def schedule(seed):
                return np.random.default_rng(seed)
            """)
        assert lint_file(path) == []

    def test_other_modules_unrestricted(self, tmp_path):
        path = _write(tmp_path, "bench/report.py", """\
            import time

            def stamp():
                return time.time()
            """)
        assert lint_file(path) == []


class TestLocalImport:
    def test_flags_local_import_in_hot_path(self, tmp_path):
        path = _write(tmp_path, "engine/ops/filter.py", """\
            def apply(frame):
                import numpy as np
                return np.asarray(frame)
            """)
        findings = lint_file(path)
        assert _rules(findings) == ["local-import"]

    def test_module_scope_import_is_fine(self, tmp_path):
        path = _write(tmp_path, "engine/ops/filter.py", """\
            import numpy as np

            def apply(frame):
                return np.asarray(frame)
            """)
        assert lint_file(path) == []

    def test_cold_path_local_import_is_fine(self, tmp_path):
        path = _write(tmp_path, "api/context.py", """\
            def serve():
                import asyncio
                return asyncio.new_event_loop()
            """)
        assert lint_file(path) == []


class TestMetricHotLookup:
    def test_flags_registry_lookup_in_consume(self, tmp_path):
        path = _write(tmp_path, "ops.py", """\
            class Agg:
                def consume_delta(self, message):
                    self.registry.counter("rows_total").inc(
                        message.n_rows
                    )
            """)
        findings = lint_file(path)
        assert _rules(findings) == ["metric-hot-lookup"]
        assert "pre-bind" in findings[0].message

    def test_flags_label_dict_literal_in_step(self, tmp_path):
        path = _write(tmp_path, "sched.py", """\
            class Scheduler:
                def step(self):
                    self.steps.inc(labels={"session": self.name})
            """)
        findings = lint_file(path)
        assert _rules(findings) == ["metric-hot-lookup"]
        assert "dict per" in findings[0].message

    def test_flags_lookup_in_next(self, tmp_path):
        path = _write(tmp_path, "scan.py", """\
            class Stream:
                def __next__(self):
                    self.registry.histogram("lat").observe(0.1)
            """)
        assert _rules(lint_file(path)) == ["metric-hot-lookup"]

    def test_prebound_instrument_call_is_fine(self, tmp_path):
        path = _write(tmp_path, "ops.py", """\
            class Agg:
                def __init__(self, registry):
                    self._rows = registry.counter("rows_total")

                def consume_delta(self, message):
                    self._rows.inc(message.n_rows)
            """)
        assert lint_file(path) == []

    def test_lookup_outside_hot_bodies_is_fine(self, tmp_path):
        path = _write(tmp_path, "wiring.py", """\
            def build(registry):
                return registry.counter(
                    "rows_total", labels={"table": "sales"}
                )
            """)
        assert lint_file(path) == []


class TestSuppression:
    def test_allow_comment_suppresses_one_rule(self, tmp_path):
        path = _write(tmp_path, "engine/ops/filter.py", """\
            def apply(frame):
                import numpy as np  # lint: allow(local-import)
                return np.asarray(frame)
            """)
        assert lint_file(path) == []

    def test_allow_comment_is_rule_specific(self, tmp_path):
        path = _write(tmp_path, "engine/ops/filter.py", """\
            def apply(frame):
                import numpy as np  # lint: allow(lock-sleep)
                return np.asarray(frame)
            """)
        assert _rules(lint_file(path)) == ["local-import"]


class TestDriverAndFormats:
    def test_run_lint_sorts_and_recurses(self, tmp_path):
        _write(tmp_path, "engine/ops/b.py", """\
            def apply(frame):
                import numpy
                return numpy
            """)
        _write(tmp_path, "engine/ops/a.py", """\
            def apply(frame):
                import numpy
                return numpy
            """)
        findings = run_lint([tmp_path])
        assert [Path(f.path).name for f in findings] == ["a.py", "b.py"]

    def test_render_text_and_json(self, tmp_path):
        path = _write(tmp_path, "engine/ops/a.py", """\
            def apply(frame):
                import numpy
                return numpy
            """)
        findings = run_lint([path])
        text = render_text(findings)
        assert "[local-import]" in text
        assert "1 finding(s)" in text
        payload = json.loads(render_json(findings))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "local-import"
        assert payload["findings"][0]["line"] == 2
        assert render_text([]) == "lint: clean"
        assert json.loads(render_json([]))["count"] == 0

    def test_every_rule_has_a_name(self):
        names = [rule.name for rule in ALL_RULES]
        assert len(names) == len(set(names)) == 6


class TestCli:
    def test_exit_codes_and_output(self, tmp_path, capsys):
        dirty = _write(tmp_path, "engine/ops/a.py", """\
            def apply(frame):
                import numpy
                return numpy
            """)
        assert cli.main(["lint", str(dirty)]) == 1
        assert "[local-import]" in capsys.readouterr().out
        clean = _write(tmp_path, "clean.py", "X = 1\n")
        assert cli.main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        dirty = _write(tmp_path, "engine/ops/a.py", """\
            def apply(frame):
                import numpy
                return numpy
            """)
        assert cli.main(["lint", "--format", "json", str(dirty)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1


@pytest.mark.parametrize("tree", ["src", "benchmarks"])
def test_real_tree_is_clean(tree):
    """The linted invariants hold over the actual codebase — the same
    check CI runs as a blocking job."""
    findings = run_lint([REPO_ROOT / tree])
    assert findings == [], render_text(findings)
