"""Optimizer rewrite-soundness: after every rule firing, the plan's
inferred output schema, delivery, and strict-digest-visible source set
must be exactly what they were before the rewrite.

Checked three ways: every TPC-H plan through the full rule stack at
parallelism 1 and 4 (strict mode — any drift raises), each rule in
isolation, and a hypothesis sweep over randomly composed filter/select/
aggregate chains."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import F, WakeContext, col
from repro.analysis import plan_fingerprint
from repro.engine.graph import QueryGraph
from repro.engine.optimizer import RULE_NAMES, build_optimizer
from repro.errors import PlanValidationError
from repro.tpch.queries import QUERIES

#: The catalog fixture is read-only across examples, so reuse is safe.
_FIXTURE_OK = settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

#: Per-query parameter overrides keeping plans non-degenerate at the
#: test scale factor (mirrors benchmarks/conftest.BENCH_OVERRIDES).
OVERRIDES = {11: {"fraction": 0.005}, 18: {"threshold": 200}}


def _materialize(frame):
    graph = QueryGraph()
    output = frame.plan.materialize(graph, {})
    return graph, output


def _optimize_strict(frame, parallelism, disable=()):
    graph, output = _materialize(frame)
    before = plan_fingerprint(graph, output)
    optimizer = build_optimizer(parallelism=parallelism,
                                disable=disable)
    optimizer.strict = True
    graph, output, trace = optimizer.optimize(graph, output)
    after = plan_fingerprint(graph, output)
    return before, after, trace


@pytest.mark.parametrize("parallelism", [1, 4])
@pytest.mark.parametrize("number", sorted(QUERIES))
def test_tpch_rewrites_sound(tpch, number, parallelism):
    catalog, _tables = tpch
    ctx = WakeContext(catalog)
    frame = QUERIES[number].build_plan(ctx, **OVERRIDES.get(number, {}))
    before, after, trace = _optimize_strict(frame, parallelism)
    assert before is not None, f"q{number} not statically inferable"
    assert after == before
    assert trace.rewrites_sound
    for check in trace.checks:
        assert check.ok, f"{check.rule}: {check.detail}"


def _synthetic_frames(ctx):
    """Shapes TPC-H lacks: a select computing a column no aggregate
    reads (aggregate-projection) and a duplicated filter→aggregate
    chain over one scan (common-subplan)."""
    sales = ctx.table("sales")
    pruneable = sales.select(
        okey=col("okey"), qty=col("qty"), extra=col("qty") * 2
    ).agg(F.sum("qty").alias("s"), by=["okey"])

    def chain():
        return (
            sales.filter(col("qty") > 5.0)
            .agg(F.sum("qty").alias("s"), by=["okey"])
        )

    duplicated = chain().join(chain(), on=[("okey", "okey")])
    return [pruneable, duplicated]


@pytest.mark.parametrize("rule", RULE_NAMES)
def test_each_rule_in_isolation(tpch, catalog, rule):
    """Disable everything but one rule: its firings alone must also
    preserve the plan invariant (catches rules that only look sound
    because a later rule repairs their damage)."""
    tpch_catalog, _tables = tpch
    others = tuple(name for name in RULE_NAMES if name != rule)
    frames = []
    for number in sorted(QUERIES):
        ctx = WakeContext(tpch_catalog)
        frames.append((f"q{number}", QUERIES[number].build_plan(
            ctx, **OVERRIDES.get(number, {})
        )))
    frames += [
        (f"synthetic{i}", frame)
        for i, frame in enumerate(
            _synthetic_frames(WakeContext(catalog))
        )
    ]
    fired_anywhere = 0
    for label, frame in frames:
        before, after, trace = _optimize_strict(
            frame, parallelism=4, disable=others
        )
        assert after == before, f"{label}: {rule} drifted the plan"
        fired_anywhere += sum(
            f.rewrites for f in trace.firings if f.rule == rule
        )
    assert fired_anywhere > 0, f"{rule} never fired on any plan"


def test_checks_recorded_in_trace(tpch):
    catalog, _tables = tpch
    ctx = WakeContext(catalog)
    frame = QUERIES[3].build_plan(ctx)
    _before, _after, trace = _optimize_strict(frame, parallelism=4)
    assert trace.checks, "no rewrite checks recorded"
    assert any("rewrite checks:" in line for line in trace.render())


def test_unsound_rewrite_raises_in_strict_mode(catalog, monkeypatch):
    """Sabotage a rule so it fires but corrupts the plan: strict mode
    must refuse the rewrite with a structured error."""
    from repro.engine import optimizer as opt_mod
    from repro.engine.ops import SelectOperator

    ctx = WakeContext(catalog)
    frame = ctx.table("sales").filter(col("qty") > 1).filter(
        col("qty") < 49
    )
    graph, output = _materialize(frame)

    class DropColumn:
        name = "combine-filters"  # impersonate a known rule

        def apply(self, graph, output):
            node_id = graph.add(
                SelectOperator("narrow", [("okey", col("okey"))]),
                (output,),
            )
            return graph, node_id, 1

    optimizer = opt_mod.Optimizer([DropColumn()], [])
    optimizer.strict = True
    with pytest.raises(PlanValidationError) as info:
        optimizer.optimize(graph, output)
    assert info.value.code == "unsound-rewrite"

    # Non-strict: same corruption is recorded, not raised.
    graph, output = _materialize(frame)
    optimizer = opt_mod.Optimizer([DropColumn()], [])
    optimizer.strict = False
    _graph, _output, trace = optimizer.optimize(graph, output)
    assert not trace.rewrites_sound
    assert any(not check.ok for check in trace.checks)


def test_env_var_enables_strict(catalog, monkeypatch):
    monkeypatch.setenv("REPRO_CHECK_REWRITES", "1")
    optimizer = build_optimizer(parallelism=1)
    assert optimizer.strict is True
    monkeypatch.setenv("REPRO_CHECK_REWRITES", "0")
    assert build_optimizer(parallelism=1).strict is False


# -- hypothesis sweep over composed plans -----------------------------------

_PREDICATES = [
    col("qty") > 5.0,
    col("qty") < 45.0,
    col("okey") >= 3,
    col("cust") == "c1",
    col("region") != "east",
]

_AGGS = [
    lambda: F.sum("qty").alias("s"),
    lambda: F.avg("qty").alias("m"),
    lambda: F.count(None).alias("n"),
]


@given(
    pred_indexes=st.lists(
        st.integers(0, len(_PREDICATES) - 1), min_size=1, max_size=4
    ),
    project_first=st.booleans(),
    agg_index=st.one_of(
        st.none(), st.integers(0, len(_AGGS) - 1)
    ),
    parallelism=st.sampled_from([1, 4]),
)
@_FIXTURE_OK
def test_random_chains_sound(catalog, pred_indexes, project_first,
                             agg_index, parallelism):
    ctx = WakeContext(catalog)
    frame = ctx.table("sales")
    if project_first:
        frame = frame.project("okey", "qty", "cust", "region")
    for index in pred_indexes:
        frame = frame.filter(_PREDICATES[index])
    if agg_index is not None:
        frame = frame.agg(_AGGS[agg_index](), by=["okey"])
    before, after, trace = _optimize_strict(frame, parallelism)
    assert before is not None
    assert after == before
    assert trace.rewrites_sound
