"""Submit-time plan validation: every malformed-plan class raises a
structured :class:`PlanValidationError` before any partition is read,
and the static inference agrees with the engine's own bind on
well-formed plans."""

import json
import socket

import pytest

from repro import F, WakeContext, col
from repro.analysis import infer_plan, plan_fingerprint, validate_plan
from repro.engine.graph import QueryGraph
from repro.errors import PlanValidationError, QueryError
from repro.service import QueryService, ServiceClient, SnapshotServer
from repro.storage.catalog import TableMeta


@pytest.fixture
def ctx(catalog):
    return WakeContext(catalog)


@pytest.fixture
def no_reads(monkeypatch):
    """Any partition read fails the test: validation must come first."""

    def _boom(self, *args, **kwargs):
        raise AssertionError(
            "partition read before plan validation"
        )

    monkeypatch.setattr(TableMeta, "read_partition", _boom)


def _submit(ctx, frame):
    """The submit chokepoint shared by run/stream/serve."""
    return ctx.executor_for(frame)


class TestValidationErrors:
    def test_undefined_column(self, ctx, no_reads):
        frame = ctx.table("sales").filter(col("nope") > 1)
        with pytest.raises(PlanValidationError) as info:
            _submit(ctx, frame)
        assert info.value.code == "undefined-column"
        assert info.value.column == "nope"
        assert info.value.node is not None

    def test_undefined_column_in_projection(self, ctx, no_reads):
        frame = ctx.table("sales").select(twice=col("missing") * 2)
        with pytest.raises(PlanValidationError) as info:
            _submit(ctx, frame)
        assert info.value.code == "undefined-column"
        assert info.value.column == "missing"

    def test_type_mismatched_comparison(self, ctx, no_reads):
        frame = ctx.table("sales").filter(col("qty") > "forty")
        with pytest.raises(PlanValidationError) as info:
            _submit(ctx, frame)
        assert info.value.code == "type-mismatch"

    def test_string_arithmetic(self, ctx, no_reads):
        frame = ctx.table("sales").select(bad=col("cust") + 1)
        with pytest.raises(PlanValidationError) as info:
            _submit(ctx, frame)
        assert info.value.code == "type-mismatch"

    def test_non_boolean_filter_predicate(self, ctx, no_reads):
        frame = ctx.table("sales").filter(col("qty") + 1)
        with pytest.raises(PlanValidationError) as info:
            _submit(ctx, frame)
        assert info.value.code == "type-mismatch"

    def test_non_numeric_agg_input(self, ctx, no_reads):
        frame = ctx.table("sales").agg(
            F.sum("cust").alias("s"), by=["okey"]
        )
        with pytest.raises(PlanValidationError) as info:
            _submit(ctx, frame)
        assert info.value.code == "non-numeric-agg"
        assert info.value.column == "cust"

    def test_count_on_string_is_fine(self, ctx):
        frame = ctx.table("sales").agg(
            F.count_distinct("cust").alias("n"), by=["okey"]
        )
        _submit(ctx, frame)

    def test_duplicate_output_name(self, ctx, no_reads):
        left = ctx.table("sales").select(
            okey=col("okey"), qty=col("qty"), qty_right=col("qty")
        )
        frame = left.join(ctx.table("sales"),
                          on=[("okey", "okey")])
        with pytest.raises(PlanValidationError) as info:
            _submit(ctx, frame)
        assert info.value.code == "duplicate-output"

    def test_delivery_misuse_group_by_mutable(self, ctx, no_reads):
        # The aggregate's own output column is REPLACE/MUTABLE; keying
        # a second aggregate on it is the paper's blocking case (§3.3).
        inner = ctx.table("sales").agg(
            F.sum("qty").alias("s"), by=["cust"]
        )
        frame = inner.agg(F.count(None).alias("n"), by=["s"])
        with pytest.raises(PlanValidationError) as info:
            _submit(ctx, frame)
        assert info.value.code == "delivery-misuse"

    def test_error_is_a_query_error(self, ctx, no_reads):
        frame = ctx.table("sales").filter(col("nope") > 1)
        with pytest.raises(QueryError):
            _submit(ctx, frame)

    def test_to_dict_is_structured(self, ctx, no_reads):
        frame = ctx.table("sales").filter(col("nope") > 1)
        with pytest.raises(PlanValidationError) as info:
            _submit(ctx, frame)
        detail = info.value.to_dict()
        assert detail["code"] == "undefined-column"
        assert detail["column"] == "nope"
        assert detail["node"] is not None
        assert detail["operator"]
        assert "nope" in detail["message"]

    def test_validate_false_escape_hatch(self, catalog):
        ctx = WakeContext(catalog, validate=False)
        frame = ctx.table("sales").filter(col("nope") > 1)
        # Submit-time validation off: the error surfaces at bind
        # instead (still a QueryError, just later and less precise).
        with pytest.raises(QueryError):
            ctx.run(frame)


class TestInferenceMatchesBind:
    def _plans(self, ctx):
        sales = ctx.table("sales")
        customers = ctx.table("customers")
        return [
            sales.filter(col("qty") > 10.0),
            sales.select(okey=col("okey"),
                         double=col("qty") * 2),
            sales.agg(F.sum("qty").alias("s"),
                      F.avg("qty").alias("m"), by=["okey"]),
            sales.agg(F.count(None).alias("n"), by=["cust"]),
            sales.join(customers, on=[("cust", "ckey")]),
            sales.sort("qty", desc=True).limit(5),
            sales.distinct("cust"),
        ]

    def test_schemas_deliveries_and_clustering_agree(self, ctx):
        for frame in self._plans(ctx):
            graph = QueryGraph()
            output = frame.plan.materialize(graph, {})
            inferred = infer_plan(graph, output)
            bound = graph.resolve()
            for node_id, stream in inferred.items():
                if stream is None:
                    continue
                info = bound[node_id]
                assert [
                    (f.name, f.dtype, f.kind)
                    for f in stream.schema.fields
                ] == [
                    (f.name, f.dtype, f.kind)
                    for f in info.schema.fields
                ], f"node {node_id} schema drift"
                assert stream.delivery == info.delivery
                assert stream.clustering_key == tuple(
                    info.clustering_key
                )

    def test_fingerprint_is_deterministic(self, ctx):
        frame = self._plans(ctx)[2]
        graph = QueryGraph()
        output = frame.plan.materialize(graph, {})
        assert plan_fingerprint(graph, output) == plan_fingerprint(
            graph, output
        )

    def test_validate_plan_returns_streams(self, ctx):
        frame = self._plans(ctx)[0]
        graph = QueryGraph()
        output = frame.plan.materialize(graph, {})
        streams = validate_plan(graph, output)
        assert streams[output] is not None
        names = [f.name for f in streams[output].schema.fields]
        assert names == ["okey", "qty", "cust", "region"]


class TestExplainTypes:
    def test_types_mode_lists_schemas(self, ctx):
        frame = ctx.table("sales").agg(
            F.sum("qty").alias("s"), by=["okey"]
        )
        text = ctx.explain(frame, mode="types")
        assert "s: float64" in text
        assert "okey: int64" in text
        assert "delivery=" in text

    def test_unknown_mode_rejected(self, ctx):
        frame = ctx.table("sales")
        with pytest.raises(QueryError):
            ctx.explain(frame, mode="nope")


class TestWireValidation:
    """A malformed submit over NDJSON/TCP returns a structured error
    reply, not a failed session or a dropped connection."""

    @pytest.fixture
    def server(self, catalog):
        ctx = WakeContext(catalog)
        plans = {
            "good": lambda c, **p: c.table("sales").sum("qty"),
            "bad-column": lambda c, **p: c.table("sales").filter(
                col("nope") > 1
            ),
            "bad-agg": lambda c, **p: c.table("sales").agg(
                F.sum("cust").alias("s")
            ),
        }
        service = QueryService(ctx, plans=plans)
        server = SnapshotServer(service, port=0).start()
        yield server
        server.stop()

    def _raw_submit(self, server, query):
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=30
        ) as sock:
            file = sock.makefile("rwb")
            file.write(
                (json.dumps({"op": "submit", "query": query}) + "\n")
                .encode()
            )
            file.flush()
            return json.loads(file.readline())

    def test_structured_error_reply(self, server, no_reads):
        reply = self._raw_submit(server, "bad-column")
        assert reply["ok"] is False
        assert reply["detail"]["code"] == "undefined-column"
        assert reply["detail"]["column"] == "nope"
        assert reply["detail"]["node"] is not None
        assert "nope" in reply["error"]

    def test_agg_error_reply(self, server, no_reads):
        reply = self._raw_submit(server, "bad-agg")
        assert reply["ok"] is False
        assert reply["detail"]["code"] == "non-numeric-agg"

    def test_connection_survives_and_serves_next_query(self, server):
        # One rejected submit must not poison the service: the same
        # server still executes a valid plan end to end.
        reply = self._raw_submit(server, "bad-column")
        assert reply["ok"] is False
        with ServiceClient(port=server.port, timeout=30) as client:
            session = client.submit("good")
            events = list(client.subscribe(session))
            assert events[-1]["event"] == "end"
            assert events[-1]["state"] == "done"

    def test_no_session_created_for_malformed_plan(self, server):
        self._raw_submit(server, "bad-column")
        with ServiceClient(port=server.port, timeout=30) as client:
            status = client.status()
            assert status["sessions"] == []
