"""Shared fixtures: small partitioned tables for engine/API tests, plus
the session-scoped TPC-H dataset used by the tpch/baseline/bench tests."""

import os

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.storage import Catalog, write_table


@pytest.fixture(scope="session")
def tpch(tmp_path_factory):
    """(catalog, tables) at SF 0.005 with 8 fact partitions.

    ``REPRO_TPCH_CACHE_DIR`` (set by CI) reuses the partitioned dataset
    across runs instead of regenerating dbgen output every time.
    """
    cache_root = os.environ.get("REPRO_TPCH_CACHE_DIR")
    if cache_root:
        from repro.tpch import load_or_generate

        return load_or_generate(
            cache_root, scale_factor=0.005, seed=7, fact_partitions=8,
            dimension_partitions=2,
        )
    from repro.tpch import generate_and_load

    directory = tmp_path_factory.mktemp("tpch")
    catalog, tables = generate_and_load(
        directory, scale_factor=0.005, seed=7, fact_partitions=8,
        dimension_partitions=2,
    )
    return catalog, tables


@pytest.fixture
def tpch_ctx(tpch):
    from repro import WakeContext

    catalog, _tables = tpch
    return WakeContext(catalog)


@pytest.fixture
def tpch_tables(tpch):
    _catalog, tables = tpch
    return tables


@pytest.fixture
def sales_frame():
    """60 rows: okey 0..29 (2 rows each, sorted), qty, cust, region."""
    rng = np.random.default_rng(12345)
    okey = np.repeat(np.arange(30, dtype=np.int64), 2)
    qty = rng.integers(1, 50, size=60).astype(np.float64)
    cust = np.array([f"c{k % 5}" for k in okey])
    region = np.array(["east" if k % 2 == 0 else "west" for k in okey])
    return DataFrame(
        {"okey": okey, "qty": qty, "cust": cust, "region": region}
    )


@pytest.fixture
def customers_frame():
    return DataFrame(
        {
            "ckey": np.array([f"c{i}" for i in range(5)]),
            "name": np.array(
                ["alice", "bob", "carol", "dave", "erin"]
            ),
            "segment": np.array(["A", "B", "A", "B", "A"]),
        }
    )


@pytest.fixture
def catalog(tmp_path, sales_frame, customers_frame):
    """Catalog with a clustered fact table (6 partitions) and a small
    dimension table (1 partition)."""
    cat = Catalog(root=str(tmp_path))
    write_table(
        cat, tmp_path / "sales", "sales", sales_frame,
        rows_per_partition=10,
        primary_key=["okey"], clustering_key=["okey"],
    )
    write_table(
        cat, tmp_path / "customers", "customers", customers_frame,
        rows_per_partition=100,
        primary_key=["ckey"],
    )
    return cat
