"""Unit tests for query-lifecycle tracing (span trees, step aggregates,
the tracer ring, and rendering)."""

from repro.obs import SessionTrace, Tracer, maybe_span


class FakeClock:
    def __init__(self, now=10.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSessionTrace:
    def test_span_nesting_builds_a_tree(self):
        clock = FakeClock()
        trace = SessionTrace("q06", clock=clock)
        with trace.span("submit"):
            clock.advance(1.0)
            with trace.span("validate"):
                clock.advance(0.5)
            with trace.span("optimize"):
                clock.advance(0.25)
        root = trace.root
        assert root.name == "query"
        (submit,) = root.children
        assert submit.name == "submit"
        assert [c.name for c in submit.children] == [
            "validate", "optimize"
        ]
        assert submit.duration == 1.75
        assert submit.children[0].duration == 0.5

    def test_span_attrs_recorded(self):
        trace = SessionTrace("q", clock=FakeClock())
        with trace.span("cache_lookup", query="q06") as span:
            span.attrs["hit"] = True
        (span,) = trace.root.children
        assert span.attrs == {"query": "q06", "hit": True}

    def test_step_ring_bounds_retention_aggregates_stay_exact(self):
        trace = SessionTrace("q", clock=FakeClock(),
                             max_step_events=4)
        for i in range(10):
            trace.record_step(i, 0.1)
        assert trace.steps_total == 10
        assert round(trace.step_seconds, 6) == 1.0
        assert len(trace.steps) == 4
        assert [i for i, _, _ in trace.steps] == [6, 7, 8, 9]

    def test_finish_is_idempotent_and_records_state(self):
        clock = FakeClock()
        trace = SessionTrace("q", clock=clock)
        clock.advance(2.0)
        trace.finish(state="done")
        ended = trace.root.ended
        clock.advance(5.0)
        trace.finish(state="done")
        assert trace.root.ended == ended
        assert trace.root.attrs["state"] == "done"

    def test_to_dict_carries_correlation_ids(self):
        trace = SessionTrace("q06", clock=FakeClock())
        trace.session_id = "s1"
        trace.plan_hash = "abc123"
        trace.record_step(0, 0.01)
        trace.record_publish(2)
        out = trace.to_dict()
        assert out["session"] == "s1"
        assert out["plan_hash"] == "abc123"
        assert out["steps_total"] == 1
        assert out["publishes_total"] == 2
        assert out["spans"]["name"] == "query"
        assert out["recent_steps"][0]["index"] == 0

    def test_render_mentions_spans_and_aggregates(self):
        clock = FakeClock()
        trace = SessionTrace("q06", clock=clock)
        trace.session_id = "s1"
        trace.plan_hash = "deadbeefdeadbeef"
        with trace.span("submit"):
            clock.advance(0.5)
        trace.record_step(0, 0.002)
        trace.record_publish(1)
        trace.finish(state="done")
        text = trace.render()
        assert "trace s1 (q06)" in text
        assert "plan=deadbeefdead" in text
        assert "submit" in text
        assert "execute: 1 step(s)" in text
        assert "publish: 1 snapshot(s)" in text

    def test_maybe_span_none_is_a_noop(self):
        with maybe_span(None, "anything"):
            pass
        trace = SessionTrace("q", clock=FakeClock())
        with maybe_span(trace, "real"):
            pass
        assert [c.name for c in trace.root.children] == ["real"]


class TestTracer:
    def test_bind_and_get(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.begin("q06")
        tracer.bind("s1", trace)
        assert trace.session_id == "s1"
        assert tracer.get("s1") is trace
        assert tracer.get("unknown") is None

    def test_ring_evicts_oldest(self):
        tracer = Tracer(clock=FakeClock(), max_traces=2)
        for i in range(3):
            tracer.bind(f"s{i}", tracer.begin(f"q{i}"))
        assert tracer.get("s0") is None
        assert [t.session_id for t in tracer.traces()] == ["s1", "s2"]

    def test_rebinding_same_session_moves_to_newest(self):
        tracer = Tracer(clock=FakeClock(), max_traces=2)
        first = tracer.begin("a")
        tracer.bind("s1", first)
        tracer.bind("s2", tracer.begin("b"))
        tracer.bind("s1", tracer.begin("c"))
        tracer.bind("s3", tracer.begin("d"))
        # s2 was the oldest after s1 refreshed; it falls out first.
        assert tracer.get("s2") is None
        assert tracer.get("s1").name == "c"
        assert tracer.get("s3").name == "d"
