"""Unit + integration tests for the per-operator profiler and the
``explain(mode="profile")`` / scan-instrument seams."""

import pytest

from repro import F, WakeContext
from repro.errors import QueryError
from repro.obs import (
    MetricsRegistry,
    OperatorProfiler,
    ScanInstruments,
)


class TestOperatorProfiler:
    def test_record_accumulates_per_operator(self):
        p = OperatorProfiler()
        p.record("scan", 0.010, 100)
        p.record("scan", 0.020, 50)
        p.record("agg", 0.005, 150)
        out = p.to_dict()
        assert out["scan"] == {
            "calls": 2, "rows": 150,
            "seconds": pytest.approx(0.030),
        }
        assert out["agg"]["calls"] == 1
        assert p.total_seconds == pytest.approx(0.035)

    def test_rows_sorted_by_time_with_totals(self):
        p = OperatorProfiler()
        p.record("fast", 0.001, 10)
        p.record("slow", 0.100, 20)
        rows = p.rows()
        assert [r[0] for r in rows] == ["slow", "fast", "total"]
        assert rows[-1][1] == 2  # total calls
        assert rows[-1][2] == 30  # total rows
        assert rows[-1][4] == "100.0%"

    def test_empty_profiler_renders_without_div_by_zero(self):
        text = OperatorProfiler().render()
        assert "operator" in text
        assert "0.0%" in text


class TestExplainProfile:
    def test_profile_mode_renders_every_operator(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(
            F.sum("qty").alias("s"), by=["cust"]
        )
        text = ctx.explain(plan, mode="profile")
        assert "read(sales)" in text
        assert "operator" in text and "time-ms" in text
        assert "total" in text
        profile = ctx.last_profile
        assert profile is not None
        assert profile.total_seconds > 0
        # The scan pulled every sales partition's rows.
        assert profile.to_dict()["read(sales)"]["rows"] == 60

    def test_unknown_mode_lists_profile(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").sum("qty")
        with pytest.raises(QueryError, match="'profile'"):
            ctx.explain(plan, mode="nope")

    def test_profile_does_not_leak_into_plain_runs(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").sum("qty")
        ctx.explain(plan, mode="profile")
        # A later normal run must not inherit a profiler.
        plan2 = ctx.table("sales").sum("qty")
        ctx.run(plan2)
        assert ctx.last_executor.profiler is None


class TestScanInstruments:
    def test_scan_counters_track_reads_rows_and_bytes(self, catalog):
        ctx = WakeContext(catalog)
        registry = MetricsRegistry()
        scan = ScanInstruments(registry)
        plan = ctx.table("sales").sum("qty")
        executor = ctx.executor_for(plan)
        executor.scan_metrics = scan
        executor.run()
        assert scan.partitions_read.value == 6
        assert scan.rows_read.value == 60
        assert scan.bytes_read.value > 0
        assert scan.partitions_pruned.value == 0

    def test_pruned_partitions_counted_not_read(self, catalog):
        from repro import col

        ctx = WakeContext(catalog)
        registry = MetricsRegistry()
        scan = ScanInstruments(registry)
        # okey is clustered 0..29 over 6 partitions; a tight predicate
        # lets the zone maps prune most of them.
        plan = (
            ctx.table("sales").filter(col("okey") <= 4).sum("qty")
        )
        executor = ctx.executor_for(plan)
        executor.scan_metrics = scan
        executor.run()
        assert scan.partitions_pruned.value == 5
        assert scan.partitions_read.value == 1
