"""Unit tests for the metrics registry (counters, gauges, histograms,
views, Prometheus exposition, and the disabled null path)."""

import threading

import pytest

from repro.errors import QueryError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NullRegistry,
)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCounter:
    def test_inc_accumulates(self):
        c = MetricsRegistry().counter("x_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(QueryError, match="cannot decrease"):
            c.inc(-1)

    def test_concurrent_incs_all_land(self):
        c = MetricsRegistry().counter("x_total")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6.0


class TestHistogram:
    def test_observations_bucketed_cumulatively(self):
        h = MetricsRegistry().histogram(
            "lat_seconds", buckets=(0.01, 0.1, 1.0)
        )
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.555)
        assert snap["buckets"]["0.01"] == 1
        assert snap["buckets"]["0.1"] == 2
        assert snap["buckets"]["1.0"] == 3
        assert snap["buckets"]["+Inf"] == 4

    def test_boundary_lands_in_its_bucket(self):
        # le semantics: an observation equal to an upper bound counts
        # inside that bucket.
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.snapshot()["buckets"]["1.0"] == 1

    def test_empty_buckets_rejected(self):
        with pytest.raises(QueryError, match=">= 1 bucket"):
            MetricsRegistry().histogram("h", buckets=())

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels={"session": "s1"})
        b = reg.counter("x_total", labels={"session": "s2"})
        assert a is not b
        a.inc()
        assert b.value == 0.0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels={"a": "1", "b": "2"})
        b = reg.counter("x_total", labels={"b": "2", "a": "1"})
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(QueryError, match="already registered"):
            reg.gauge("x_total")

    def test_kind_conflict_across_label_sets_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels={"s": "1"})
        with pytest.raises(QueryError, match="already registered"):
            reg.gauge("x_total", labels={"s": "2"})

    def test_injectable_clock_drives_uptime(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        clock.advance(7.5)
        assert reg.uptime() == 7.5

    def test_to_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("x_total", help="things").inc(3)
        out = reg.to_dict()
        assert out["x_total"]["kind"] == "counter"
        assert out["x_total"]["help"] == "things"
        assert out["x_total"]["samples"] == [
            {"labels": {}, "value": 3.0}
        ]


class TestViews:
    def test_scalar_view_sampled_at_collection_time(self):
        reg = MetricsRegistry()
        state = {"depth": 2}
        reg.register_view("queue_depth", lambda: state["depth"])
        assert reg.to_dict()["queue_depth"]["samples"][0]["value"] == 2.0
        state["depth"] = 9
        assert reg.to_dict()["queue_depth"]["samples"][0]["value"] == 9.0

    def test_labeled_view_emits_one_sample_per_entity(self):
        reg = MetricsRegistry()
        reg.register_view(
            "sessions",
            lambda: [({"state": "done"}, 2), ({"state": "running"}, 1)],
        )
        samples = reg.to_dict()["sessions"]["samples"]
        assert {tuple(s["labels"].items()): s["value"]
                for s in samples} == {
            (("state", "done"),): 2.0,
            (("state", "running"),): 1.0,
        }

    def test_duplicate_view_name_rejected(self):
        reg = MetricsRegistry()
        reg.register_view("x", lambda: 0)
        with pytest.raises(QueryError, match="already registered"):
            reg.register_view("x", lambda: 1)

    def test_bad_view_kind_rejected(self):
        with pytest.raises(QueryError, match="counter|gauge"):
            MetricsRegistry().register_view(
                "x", lambda: 0, kind="histogram"
            )


class TestPrometheusRender:
    def test_counter_exposition(self):
        reg = MetricsRegistry()
        reg.counter("x_total", help="things").inc(3)
        text = reg.render_prometheus()
        assert "# HELP x_total things" in text
        assert "# TYPE x_total counter" in text
        assert "\nx_total 3\n" in text

    def test_labeled_sample_exposition(self):
        reg = MetricsRegistry()
        reg.gauge("lag", labels={"session": "s1"}).set(0.5)
        assert 'lag{session="s1"} 0.5' in reg.render_prometheus()

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("g", labels={"q": 'a"b\\c'}).set(1)
        assert r'g{q="a\"b\\c"} 1' in reg.render_prometheus()

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = reg.render_prometheus()
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert 'lat_sum 5.05' in text
        assert 'lat_count 2' in text


class TestNullRegistry:
    def test_disabled_surface_is_inert(self):
        reg = NullRegistry()
        assert reg.enabled is False
        assert reg.counter("x") is NULL_INSTRUMENT
        assert reg.gauge("x") is NULL_INSTRUMENT
        assert reg.histogram("x") is NULL_INSTRUMENT
        reg.register_view("x", lambda: 0)
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.dec()
        NULL_INSTRUMENT.set(5)
        NULL_INSTRUMENT.observe(1.0)
        assert NULL_INSTRUMENT.value == 0.0
        assert reg.to_dict() == {}
        assert reg.render_prometheus() == ""
        assert reg.uptime() == 0.0
