"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
