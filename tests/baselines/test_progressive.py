"""Tests for the ProgressiveDB-like baseline."""

import pytest

from repro.baselines import ProgressiveQuery, ProgressiveScan
from repro.dataframe import AggSpec, col
from repro.errors import QueryError


@pytest.fixture
def scan(catalog):
    return ProgressiveScan(catalog.table("sales"), chunk_rows=10,
                           middleware_overhead=0.0)


class TestProgressiveScan:
    def test_global_sum_converges_exact(self, scan, sales_frame):
        query = ProgressiveQuery(
            table="sales",
            aggregates=[AggSpec("sum", "qty", "total")],
        )
        estimates = scan.run(query)
        assert len(estimates) == 6
        exact = sales_frame.column("qty").sum()
        assert estimates[-1].t == 1.0
        assert estimates[-1].frame.column("total")[0] == pytest.approx(
            exact)

    def test_uniform_scaling_midway(self, scan, sales_frame):
        query = ProgressiveQuery(
            table="sales",
            aggregates=[AggSpec("count", None, "n")],
        )
        estimates = scan.run(query)
        mid = estimates[2]  # t = 0.5
        assert mid.t == pytest.approx(0.5)
        assert mid.frame.column("n")[0] == pytest.approx(60.0)

    def test_grouped_avg(self, scan, sales_frame):
        query = ProgressiveQuery(
            table="sales",
            aggregates=[AggSpec("avg", "qty", "avg_qty")],
            by=["region"],
        )
        final = scan.run(query)[-1].frame
        for region in ("east", "west"):
            keep = sales_frame.column("region") == region
            expected = sales_frame.column("qty")[keep].mean()
            idx = final.column("region").tolist().index(region)
            assert final.column("avg_qty")[idx] == pytest.approx(expected)

    def test_predicate_and_derived(self, scan, sales_frame):
        query = ProgressiveQuery(
            table="sales",
            aggregates=[AggSpec("sum", "double_qty", "total")],
            predicate=col("region") == "east",
            derived={"double_qty": col("qty") * 2},
        )
        final = scan.run(query)[-1].frame
        keep = sales_frame.column("region") == "east"
        expected = 2 * sales_frame.column("qty")[keep].sum()
        assert final.column("total")[0] == pytest.approx(expected)

    def test_estimates_converge_monotonically_in_expectation(
            self, scan, sales_frame):
        query = ProgressiveQuery(
            table="sales", aggregates=[AggSpec("sum", "qty", "total")]
        )
        estimates = scan.run(query)
        exact = sales_frame.column("qty").sum()
        first_err = abs(estimates[0].frame.column("total")[0] - exact)
        last_err = abs(estimates[-1].frame.column("total")[0] - exact)
        assert last_err <= first_err

    def test_unsupported_aggregate(self):
        with pytest.raises(QueryError, match="supports"):
            ProgressiveQuery(
                table="sales",
                aggregates=[AggSpec("count_distinct", "cust", "d")],
            )

    def test_wrong_table(self, scan):
        query = ProgressiveQuery(
            table="orders", aggregates=[AggSpec("count", None, "n")]
        )
        with pytest.raises(QueryError, match="targets"):
            scan.run(query)

    def test_middleware_overhead_slows_scan(self, catalog):
        query = ProgressiveQuery(
            table="sales", aggregates=[AggSpec("count", None, "n")]
        )
        fast = ProgressiveScan(catalog.table("sales"), chunk_rows=30,
                               middleware_overhead=0.0)
        slow = ProgressiveScan(catalog.table("sales"), chunk_rows=30,
                               middleware_overhead=0.01)
        t_fast = fast.run(query)[-1].wall_time
        t_slow = slow.run(query)[-1].wall_time
        assert t_slow > t_fast
