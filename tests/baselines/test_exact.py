"""Tests for the exact all-at-once engine."""

import pytest

from repro.baselines import ExactEngine
from repro.errors import QueryError
from repro.tpch.queries import QUERIES


class TestExactEngine:
    def test_memory_mode_matches_reference(self, tpch):
        catalog, tables = tpch
        engine = ExactEngine(tables=tables, mode="memory")
        result = engine.run(QUERIES[6])
        expected = QUERIES[6].run_reference(tables.tables)
        assert result.frame.equals(expected)
        assert result.wall_time > 0
        assert result.rows_scanned > 0

    def test_scan_mode_reads_catalog(self, tpch):
        catalog, tables = tpch
        engine = ExactEngine(catalog=catalog, mode="scan")
        result = engine.run(QUERIES[6])
        expected = QUERIES[6].run_reference(tables.tables)
        assert result.frame.equals(expected)

    def test_scan_slower_than_memory(self, tpch):
        catalog, tables = tpch
        memory = ExactEngine(tables=tables, mode="memory")
        scan = ExactEngine(catalog=catalog, mode="scan")
        fast = min(memory.run(QUERIES[1]).wall_time for _ in range(2))
        slow = min(scan.run(QUERIES[1]).wall_time for _ in range(2))
        assert slow > fast

    def test_memory_tracking(self, tpch):
        _catalog, tables = tpch
        engine = ExactEngine(tables=tables, mode="memory")
        result = engine.run(QUERIES[6], track_memory=True)
        assert result.peak_bytes > 0

    def test_param_overrides(self, tpch):
        _catalog, tables = tpch
        engine = ExactEngine(tables=tables, mode="memory")
        spec_result = engine.run(QUERIES[18])
        relaxed = engine.run(QUERIES[18], threshold=100)
        assert relaxed.frame.n_rows >= spec_result.frame.n_rows

    def test_mode_validation(self, tpch):
        catalog, tables = tpch
        with pytest.raises(QueryError):
            ExactEngine(tables=tables, mode="gpu")
        with pytest.raises(QueryError):
            ExactEngine(mode="memory")
        with pytest.raises(QueryError):
            ExactEngine(tables=tables, mode="scan")
