"""Tests for the WanderJoin-like baseline."""

import numpy as np
import pytest

from repro.baselines import WalkQuery, WalkStep, WanderJoinEngine
from repro.dataframe import DataFrame, col
from repro.errors import QueryError


@pytest.fixture
def star_tables():
    """Small star schema with a known exact join-sum."""
    rng = np.random.default_rng(5)
    n_orders = 40
    n_lines = 400
    orders = DataFrame(
        {
            "okey": np.arange(n_orders, dtype=np.int64),
            "flag": np.array(["y" if i % 2 == 0 else "n"
                              for i in range(n_orders)]),
        }
    )
    lines = DataFrame(
        {
            "lkey": np.arange(n_lines, dtype=np.int64),
            "okey": rng.integers(0, n_orders, size=n_lines).astype(
                np.int64),
            "value": rng.uniform(1.0, 10.0, size=n_lines),
        }
    )
    return {"orders": orders, "lineitem": lines}


def exact_answer(tables):
    from repro.dataframe import hash_join

    joined = hash_join(tables["lineitem"], tables["orders"], ["okey"],
                       ["okey"])
    keep = joined.column("flag") == "y"
    return joined.column("value")[keep].sum()


class TestWanderJoin:
    def test_estimate_converges_near_exact(self, star_tables):
        engine = WanderJoinEngine(star_tables, seed=1)
        query = WalkQuery(
            first_table="lineitem",
            first_predicate=None,
            steps=(WalkStep("orders", "okey", "okey",
                            predicate=col("flag") == "y"),),
            value=col("value"),
        )
        estimates = engine.run(query, max_walks=4000, report_every=1000)
        exact = exact_answer(star_tables)
        final = estimates[-1].estimate
        assert final == pytest.approx(exact, rel=0.1)

    def test_estimates_are_unbiased_across_seeds(self, star_tables):
        exact = exact_answer(star_tables)
        query = WalkQuery(
            first_table="lineitem",
            first_predicate=None,
            steps=(WalkStep("orders", "okey", "okey",
                            predicate=col("flag") == "y"),),
            value=col("value"),
        )
        means = []
        for seed in range(8):
            engine = WanderJoinEngine(star_tables, seed=seed)
            means.append(engine.run(query, max_walks=800,
                                    report_every=800)[-1].estimate)
        assert np.mean(means) == pytest.approx(exact, rel=0.05)

    def test_does_not_converge_exactly(self, star_tables):
        """The defining WanderJoin property (paper §8.4): sampling noise
        persists — the estimate is not exactly the answer."""
        engine = WanderJoinEngine(star_tables, seed=3)
        query = WalkQuery(
            first_table="lineitem",
            first_predicate=None,
            steps=(WalkStep("orders", "okey", "okey"),),
            value=col("value"),
        )
        final = engine.run(query, max_walks=2000,
                           report_every=2000)[-1].estimate
        exact = exact_answer({"lineitem": star_tables["lineitem"],
                              "orders": star_tables["orders"].with_column(
                                  "flag",
                                  np.array(["y"] * 40))})
        assert final != pytest.approx(exact, rel=1e-6)

    def test_first_predicate_filters(self, star_tables):
        engine = WanderJoinEngine(star_tables, seed=2)
        query = WalkQuery(
            first_table="lineitem",
            first_predicate=col("value") > 5.0,
            steps=(WalkStep("orders", "okey", "okey"),),
            value=col("value"),
        )
        estimates = engine.run(query, max_walks=2000, report_every=500)
        li = star_tables["lineitem"]
        exact = li.column("value")[li.column("value") > 5.0].sum()
        assert estimates[-1].estimate == pytest.approx(exact, rel=0.15)
        assert len(estimates) == 4

    def test_empty_first_table_rejected(self, star_tables):
        engine = WanderJoinEngine(star_tables, seed=0)
        query = WalkQuery(
            first_table="lineitem",
            first_predicate=col("value") > 1e9,
            steps=(),
            value=col("value"),
        )
        with pytest.raises(QueryError, match="empty"):
            engine.run(query, max_walks=10)

    def test_wall_times_increase(self, star_tables):
        engine = WanderJoinEngine(star_tables, seed=0)
        query = WalkQuery(
            first_table="lineitem",
            first_predicate=None,
            steps=(WalkStep("orders", "okey", "okey"),),
            value=col("value"),
        )
        estimates = engine.run(query, max_walks=1500, report_every=500)
        times = [e.wall_time for e in estimates]
        assert times == sorted(times)
        assert [e.walks for e in estimates] == [500, 1000, 1500]
