"""Tests for the live snapshot-streaming API."""

import threading
import time

import pytest

from repro import F, WakeContext, col
from repro.dataframe import AggSpec, group_aggregate


def _wake_threads():
    return [t for t in threading.enumerate()
            if t.name.startswith("wake-") and t.is_alive()]


def _assert_no_wake_threads(deadline=5.0):
    end = time.monotonic() + deadline
    while _wake_threads() and time.monotonic() < end:
        time.sleep(0.01)
    assert not _wake_threads(), _wake_threads()


class TestStream:
    def test_yields_every_snapshot_and_final(self, catalog,
                                             sales_frame):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"),
                                      by=["cust"])
        snapshots = list(ctx.stream(plan))
        assert len(snapshots) >= 2
        assert snapshots[-1].is_final
        ts = [s.t for s in snapshots]
        assert ts == sorted(ts)
        expected = group_aggregate(sales_frame, ["cust"],
                                   [AggSpec("sum", "qty", "s")])
        final = snapshots[-1].frame
        got = dict(zip(final.column("cust").tolist(),
                       final.column("s").tolist()))
        exp = dict(zip(expected.column("cust").tolist(),
                       expected.column("s").tolist()))
        assert got == pytest.approx(exp)

    def test_stream_matches_run(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").sum("qty")
        streamed_final = list(ctx.stream(plan))[-1].frame
        run_final = ctx.run(plan).get_final()
        assert streamed_final.equals(run_final)

    def test_stream_deep_pipeline(self, catalog):
        ctx = WakeContext(catalog)
        plan = (
            ctx.table("sales")
            .agg(F.sum("qty").alias("oq"), by=["okey"])
            .filter(col("oq") > 30)
            .agg(F.count(None).alias("n"))
        )
        snapshots = list(ctx.stream(plan))
        assert snapshots[-1].is_final
        assert snapshots[-1].frame.column("n")[0] >= 0

    def test_empty_result_still_yields_final(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").filter(col("qty") > 1e12).agg(
            F.sum("qty").alias("s"), by=["cust"]
        )
        snapshots = list(ctx.stream(plan))
        assert snapshots[-1].is_final
        assert snapshots[-1].frame.n_rows == 0

    def test_streaming_sets_last_executor(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").sum("qty")
        list(ctx.stream(plan, record_timeline=True))
        assert ctx.last_executor is not None
        assert len(ctx.last_executor.timeline) > 0

    def test_raw_table_read_threaded(self, catalog, sales_frame):
        """Edge case: the output node is itself a source."""
        ctx = WakeContext(catalog, executor="threads")
        final = ctx.run(ctx.table("sales")).get_final()
        assert final.n_rows == sales_frame.n_rows


class TestStreamAbandonment:
    def test_closing_generator_mid_stream_joins_threads(self, catalog):
        """Regression: dropping the stream() generator after partial
        consumption (``close()``, or a ``KeyboardInterrupt``/``break``
        in the consumer loop followed by GC) must shut the executor
        down cleanly — abort flag set, node threads joined — instead of
        leaking busy daemon threads."""
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"),
                                      by=["cust"])
        stream = ctx.stream(plan, source_delay=0.05)
        first = next(stream)  # partially consume...
        assert first.t <= 1.0
        stream.close()  # ...then drop the stream mid-flight
        _assert_no_wake_threads()

    def test_abandoned_generator_collected_without_hanging(self,
                                                           catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").sum("qty")
        stream = ctx.stream(plan, source_delay=0.05)
        next(stream)
        del stream  # GC closes the generator (GeneratorExit path)
        _assert_no_wake_threads()

    def test_external_cancel_ends_stream_promptly(self, catalog):
        """cancel() reuses the error-path abort flag: sources stop,
        blocked puts become drops, and the stream ends with a partial
        (never-final) edf while every worker thread joins."""
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"),
                                      by=["cust"])
        stream = ctx.stream(plan, source_delay=0.05)
        next(stream)
        ctx.last_executor.cancel()
        trailing = list(stream)  # ends instead of running to EOF
        assert all(not s.is_final for s in trailing)
        _assert_no_wake_threads()

    def test_cancel_interrupts_blocking_run(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"),
                                      by=["cust"])
        result = {}

        def consumer():
            result["edf"] = ctx.run(plan, executor="threads",
                                    source_delay=0.05)

        thread = threading.Thread(target=consumer)
        thread.start()
        deadline = time.monotonic() + 5
        while ctx.last_executor is None and time.monotonic() < deadline:
            time.sleep(0.005)
        time.sleep(0.1)
        ctx.last_executor.cancel()
        thread.join(timeout=10)
        assert not thread.is_alive(), "cancelled run() failed to return"
        assert not result["edf"].is_final
        _assert_no_wake_threads()


class TestDoubleScan:
    def test_two_scans_get_independent_progress(self, catalog,
                                                sales_frame):
        """Reading the same table twice must not share one progress
        counter (the faster scan would complete the source early)."""
        ctx = WakeContext(catalog)
        a = ctx.table("sales")
        b = ctx.table("sales")
        joined = a.join(b, on="okey", method="hash")
        edf = ctx.run(joined)
        final_progress = edf.snapshots[-1].progress
        assert len(final_progress.total) == 2  # two distinct sources
        assert edf.is_final
        assert edf.get_final().n_rows == 120  # 2x2 rows per okey

    def test_intermediate_t_not_inflated(self, catalog):
        ctx = WakeContext(catalog)
        a = ctx.table("sales")
        b = ctx.table("sales")
        joined = a.join(b, on="okey", method="hash")
        edf = ctx.run(joined)
        # with the build side drained first, probe progress drives t;
        # no snapshot may claim completion before the last one
        for snapshot in edf.snapshots[:-1]:
            assert snapshot.t <= 1.0
