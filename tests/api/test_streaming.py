"""Tests for the live snapshot-streaming API."""

import pytest

from repro import F, WakeContext, col
from repro.dataframe import AggSpec, group_aggregate


class TestStream:
    def test_yields_every_snapshot_and_final(self, catalog,
                                             sales_frame):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("s"),
                                      by=["cust"])
        snapshots = list(ctx.stream(plan))
        assert len(snapshots) >= 2
        assert snapshots[-1].is_final
        ts = [s.t for s in snapshots]
        assert ts == sorted(ts)
        expected = group_aggregate(sales_frame, ["cust"],
                                   [AggSpec("sum", "qty", "s")])
        final = snapshots[-1].frame
        got = dict(zip(final.column("cust").tolist(),
                       final.column("s").tolist()))
        exp = dict(zip(expected.column("cust").tolist(),
                       expected.column("s").tolist()))
        assert got == pytest.approx(exp)

    def test_stream_matches_run(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").sum("qty")
        streamed_final = list(ctx.stream(plan))[-1].frame
        run_final = ctx.run(plan).get_final()
        assert streamed_final.equals(run_final)

    def test_stream_deep_pipeline(self, catalog):
        ctx = WakeContext(catalog)
        plan = (
            ctx.table("sales")
            .agg(F.sum("qty").alias("oq"), by=["okey"])
            .filter(col("oq") > 30)
            .agg(F.count(None).alias("n"))
        )
        snapshots = list(ctx.stream(plan))
        assert snapshots[-1].is_final
        assert snapshots[-1].frame.column("n")[0] >= 0

    def test_empty_result_still_yields_final(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").filter(col("qty") > 1e12).agg(
            F.sum("qty").alias("s"), by=["cust"]
        )
        snapshots = list(ctx.stream(plan))
        assert snapshots[-1].is_final
        assert snapshots[-1].frame.n_rows == 0

    def test_streaming_sets_last_executor(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").sum("qty")
        list(ctx.stream(plan, record_timeline=True))
        assert ctx.last_executor is not None
        assert len(ctx.last_executor.timeline) > 0

    def test_raw_table_read_threaded(self, catalog, sales_frame):
        """Edge case: the output node is itself a source."""
        ctx = WakeContext(catalog, executor="threads")
        final = ctx.run(ctx.table("sales")).get_final()
        assert final.n_rows == sales_frame.n_rows


class TestDoubleScan:
    def test_two_scans_get_independent_progress(self, catalog,
                                                sales_frame):
        """Reading the same table twice must not share one progress
        counter (the faster scan would complete the source early)."""
        ctx = WakeContext(catalog)
        a = ctx.table("sales")
        b = ctx.table("sales")
        joined = a.join(b, on="okey", method="hash")
        edf = ctx.run(joined)
        final_progress = edf.snapshots[-1].progress
        assert len(final_progress.total) == 2  # two distinct sources
        assert edf.is_final
        assert edf.get_final().n_rows == 120  # 2x2 rows per okey

    def test_intermediate_t_not_inflated(self, catalog):
        ctx = WakeContext(catalog)
        a = ctx.table("sales")
        b = ctx.table("sales")
        joined = a.join(b, on="okey", method="hash")
        edf = ctx.run(joined)
        # with the build side drained first, probe progress drives t;
        # no snapshot may claim completion before the last one
        for snapshot in edf.snapshots[:-1]:
            assert snapshot.t <= 1.0
