"""ExecutionOptions: one validated bundle, two call styles.

The contract under test: every historical WakeContext kwarg keeps
working (same defaults, same error messages), an ``options=`` bundle is
accepted everywhere the kwargs are, and explicit kwargs override the
bundle field-wise through a single validation path.
"""

import pytest

from repro import ExecutionOptions, F, QueryError, WakeContext
from repro.api.options import resolve_options
from repro.core.orderstat import DEFAULT_SKETCH_SIZE


class TestValidation:
    def test_defaults_match_legacy_kwargs(self):
        opts = ExecutionOptions()
        assert opts.parallelism == 1
        assert opts.pushdown is True
        assert opts.optimize is True
        assert opts.optimizer_disable == frozenset()
        assert opts.validate is True
        assert opts.quantile_mode == "exact"
        assert opts.sketch_size == DEFAULT_SKETCH_SIZE
        assert opts.scan_share is False
        assert opts.result_cache is False

    def test_parallelism_validated(self):
        with pytest.raises(QueryError, match="parallelism must be >= 1"):
            ExecutionOptions(parallelism=0)

    def test_quantile_mode_validated(self):
        with pytest.raises(QueryError, match="unknown quantile_mode"):
            ExecutionOptions(quantile_mode="bogus")

    def test_sketch_size_validated(self):
        with pytest.raises(QueryError, match="sketch_size must be >= 2"):
            ExecutionOptions(sketch_size=1)

    def test_rule_names_validated_eagerly(self):
        with pytest.raises(QueryError, match="unknown optimizer rule"):
            ExecutionOptions(optimizer_disable=("no_such_rule",))

    def test_optimizer_disable_coerced_to_frozenset(self):
        opts = ExecutionOptions(
            optimizer_disable=["predicate-pushdown"]
        )
        assert opts.optimizer_disable == frozenset(
            {"predicate-pushdown"}
        )

    def test_frozen(self):
        opts = ExecutionOptions()
        with pytest.raises(Exception):
            opts.parallelism = 4  # type: ignore[misc]


class TestMerged:
    def test_none_overrides_are_skipped(self):
        base = ExecutionOptions(parallelism=4)
        assert base.merged(parallelism=None) is base

    def test_override_revalidates(self):
        with pytest.raises(QueryError, match="parallelism must be >= 1"):
            ExecutionOptions().merged(parallelism=-2)

    def test_unknown_key_rejected(self):
        with pytest.raises(QueryError,
                           match="unknown execution option"):
            ExecutionOptions().merged(paralellism=2)  # typo

    def test_merge_keeps_unrelated_fields(self):
        base = ExecutionOptions(quantile_mode="sketch", sketch_size=32)
        merged = base.merged(parallelism=3)
        assert merged.quantile_mode == "sketch"
        assert merged.sketch_size == 32
        assert merged.parallelism == 3

    def test_resolve_options_defaults(self):
        assert resolve_options(None) == ExecutionOptions()
        assert resolve_options(None, parallelism=2).parallelism == 2

    def test_cache_fingerprint_covers_result_bytes_knobs(self):
        a = ExecutionOptions(quantile_mode="sketch", sketch_size=64)
        b = ExecutionOptions(quantile_mode="sketch", sketch_size=128)
        assert a.cache_fingerprint() != b.cache_fingerprint()
        # Plan-structure knobs are the plan hash's job, not the
        # fingerprint's.
        c = ExecutionOptions(parallelism=4)
        assert c.cache_fingerprint() == \
            ExecutionOptions().cache_fingerprint()


class TestWakeContextIntegration:
    def test_legacy_kwargs_still_work(self, catalog):
        ctx = WakeContext(catalog, parallelism=2, pushdown=False,
                          quantile_mode="sketch", sketch_size=16)
        assert ctx.parallelism == 2
        assert ctx.pushdown is False
        assert ctx.quantile_mode == "sketch"
        assert ctx.sketch_size == 16

    def test_options_bundle(self, catalog):
        opts = ExecutionOptions(parallelism=3, optimize=False)
        ctx = WakeContext(catalog, options=opts)
        assert ctx.options is opts
        assert ctx.parallelism == 3
        assert ctx.optimize is False

    def test_kwargs_override_bundle(self, catalog):
        opts = ExecutionOptions(parallelism=3)
        ctx = WakeContext(catalog, options=opts, parallelism=5)
        assert ctx.parallelism == 5
        assert ctx.options.parallelism == 5

    def test_legacy_error_messages_preserved(self, catalog):
        with pytest.raises(QueryError, match="parallelism must be >= 1"):
            WakeContext(catalog, parallelism=0)
        with pytest.raises(QueryError, match="unknown quantile_mode"):
            WakeContext(catalog, quantile_mode="nope")
        with pytest.raises(QueryError, match="sketch_size must be >= 2"):
            WakeContext(catalog, sketch_size=1)
        with pytest.raises(QueryError, match="unknown executor"):
            WakeContext(catalog, executor="fibers")

    def test_run_accepts_options(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(
            F.sum("qty").alias("total"), by=["region"]
        )
        baseline = ctx.run(plan)
        ctx2 = WakeContext(catalog)
        plan2 = ctx2.table("sales").agg(
            F.sum("qty").alias("total"), by=["region"]
        )
        via_options = ctx2.run(
            plan2, options=ExecutionOptions(pushdown=False)
        )
        assert (baseline.get_final().column("total").tobytes()
                == via_options.get_final().column("total").tobytes())

    def test_per_run_kwarg_overrides_options(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("t"),
                                      by=["region"])
        # options says parallelism=1; the kwarg wins.
        ctx.run(plan, options=ExecutionOptions(parallelism=1),
                parallelism=2)
        names = {ctx.last_executor.graph.node(nid).operator.name
                 for nid in ctx.last_executor.graph.nodes}
        assert any("union" in n or "exchange" in n for n in names)

    def test_executor_for_and_explain_accept_options(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("t"))
        executor = ctx.executor_for(
            plan, options=ExecutionOptions(validate=False)
        )
        assert executor.run().is_final
        plan2 = ctx.table("sales").agg(F.sum("qty").alias("t"))
        text = ctx.explain(
            plan2, options=ExecutionOptions(pushdown=False)
        )
        assert "read(" in text
