"""Tests for the fluent API: the paper's §1 session end-to-end, plan
re-execution, and method selection."""

import numpy as np
import pytest

from repro import F, WakeContext, col
from repro.core.properties import Delivery
from repro.dataframe import AggSpec, group_aggregate, hash_join, top_k
from repro.errors import QueryError


@pytest.fixture
def ctx(catalog):
    return WakeContext(catalog)


class TestContext:
    def test_unknown_executor(self, catalog):
        with pytest.raises(QueryError):
            WakeContext(catalog, executor="gpu")

    def test_from_catalog(self, catalog, tmp_path):
        path = tmp_path / "cat.json"
        catalog.save(path)
        ctx = WakeContext.from_catalog(path)
        assert ctx.table("sales").final().n_rows == 60

    def test_unknown_table(self, ctx):
        with pytest.raises(Exception, match="not in catalog"):
            ctx.table("nope")

    def test_explain_mentions_nodes(self, ctx):
        frame = ctx.table("sales").filter(col("qty") > 5)
        text = ctx.explain(frame)
        assert "read(sales)" in text
        assert "filter#" in text
        assert "delivery=delta" in text


class TestSection1Session:
    """The paper's motivating session, §1 (rewritten TPC-H Q18)."""

    def run_session(self, ctx):
        sales = ctx.table("sales")
        order_qty = sales.agg(
            F.sum("qty").alias("sum_qty"), by=["okey", "cust"]
        )
        lg_orders = order_qty.filter(col("sum_qty") > 40)
        lg_order_cust = lg_orders.join(
            ctx.table("customers"), on=[("cust", "ckey")]
        )
        qty_per_cust = lg_order_cust.agg(
            F.sum("sum_qty").alias("total"), by=["name"]
        )
        return qty_per_cust.top_k(["total", "name"], 3,
                                  desc=[True, False])

    def reference(self, catalog):
        full = catalog.table("sales").read_all()
        customers = catalog.table("customers").read_all()
        per_order = group_aggregate(
            full, ["okey", "cust"], [AggSpec("sum", "qty", "sum_qty")]
        )
        large = per_order.mask(per_order.column("sum_qty") > 40)
        named = hash_join(large, customers, ["cust"], ["ckey"])
        per_cust = group_aggregate(
            named, ["name"], [AggSpec("sum", "sum_qty", "total")]
        )
        return top_k(per_cust, ["total", "name"], 3,
                     ascending=[False, True])

    def test_final_matches_reference(self, ctx, catalog):
        edf = self.run_session(ctx).run()
        expected = self.reference(catalog)
        got = edf.get_final()
        assert got.column("name").tolist() == expected.column(
            "name").tolist()
        np.testing.assert_allclose(got.column("total"),
                                   expected.column("total"))

    def test_plan_is_reusable(self, ctx, catalog):
        plan = self.run_session(ctx)
        first = plan.run().get_final()
        second = plan.run().get_final()
        assert first.equals(second)

    def test_threaded_executor_same_final(self, catalog):
        sync_ctx = WakeContext(catalog, executor="sync")
        thread_ctx = WakeContext(catalog, executor="threads")
        a = self.run_session(sync_ctx).run().get_final()
        b = self.run_session(thread_ctx).run().get_final()
        assert a.equals(b)


class TestProjectionAPI:
    def test_select_kwargs(self, ctx):
        out = ctx.table("sales").select(
            okey="okey", double=col("qty") * 2
        ).final()
        assert out.column_names == ("okey", "double")

    def test_project(self, ctx):
        out = ctx.table("sales").project("qty", "okey").final()
        assert out.column_names == ("qty", "okey")
        with pytest.raises(QueryError):
            ctx.table("sales").project()

    def test_with_columns_keeps_existing(self, ctx):
        out = ctx.table("sales").with_columns(
            qty2=col("qty") * 2
        ).final()
        assert out.column_names == ("okey", "qty", "cust", "region",
                                    "qty2")

    def test_with_columns_replaces(self, ctx):
        out = ctx.table("sales").with_columns(qty=col("qty") * 0).final()
        assert (out.column("qty") == 0).all()

    def test_map_partitions(self, ctx):
        out = ctx.table("sales").map_partitions(
            lambda f: f.head(1)
        ).final()
        assert out.n_rows == 6  # one row per partition


class TestJoinAPI:
    def test_auto_picks_merge_for_clustered(self, catalog, tmp_path):
        from repro.storage import write_table

        sales_frame = catalog.table("sales").read_all()
        write_table(
            catalog, tmp_path / "s2", "sales2", sales_frame,
            rows_per_partition=17, primary_key=["okey"],
            clustering_key=["okey"],
        )
        ctx = WakeContext(catalog)
        joined = ctx.table("sales").join(
            ctx.table("sales2"), on="okey"
        )
        info = joined.stream_info()
        assert info.delivery == Delivery.DELTA
        assert joined.final().n_rows == 120  # 2x2 per okey * 30

    def test_auto_picks_hash_for_dimension(self, ctx):
        joined = ctx.table("sales").join(
            ctx.table("customers"), on=[("cust", "ckey")]
        )
        assert joined.final().n_rows == 60

    def test_semi_join(self, ctx):
        east_custs = (
            ctx.table("sales").filter(col("region") == "east")
            .project("cust").distinct("cust")
        )
        out = ctx.table("customers").join(
            east_custs, on=[("ckey", "cust")], how="semi"
        ).final()
        assert out.n_rows > 0
        assert "name" in out.column_names

    def test_merge_join_validation(self, ctx):
        with pytest.raises(QueryError, match="single key pair"):
            ctx.table("sales").join(
                ctx.table("customers"),
                on=[("cust", "ckey"), ("okey", "ckey")], method="merge",
            )
        with pytest.raises(QueryError, match="inner"):
            ctx.table("sales").join(
                ctx.table("customers"), on=[("cust", "ckey")],
                how="left", method="merge",
            )

    def test_empty_on_rejected(self, ctx):
        with pytest.raises(QueryError):
            ctx.table("sales").join(ctx.table("customers"), on=[])

    def test_cross_join_scalar(self, ctx, catalog):
        total = ctx.table("sales").agg(F.sum("qty").alias("grand"))
        out = ctx.table("sales").cross_join(total).final()
        expected = catalog.table("sales").read_all().column("qty").sum()
        assert out.n_rows == 60
        np.testing.assert_allclose(out.column("grand"),
                                   np.full(60, expected))


class TestAggAPI:
    def test_sugar_methods(self, ctx, catalog):
        full = catalog.table("sales").read_all()
        assert ctx.table("sales").sum("qty").final().column(
            "sum_qty")[0] == pytest.approx(full.column("qty").sum())
        assert ctx.table("sales").count().final().column(
            "count")[0] == 60
        assert ctx.table("sales").avg("qty").final().column(
            "avg_qty")[0] == pytest.approx(full.column("qty").mean())
        assert ctx.table("sales").min("qty").final().column(
            "min_qty")[0] == full.column("qty").min()
        assert ctx.table("sales").max("qty").final().column(
            "max_qty")[0] == full.column("qty").max()
        assert ctx.table("sales").count_distinct("cust").final().column(
            "distinct_cust")[0] == 5

    def test_agg_requires_exprs(self, ctx):
        with pytest.raises(QueryError):
            ctx.table("sales").agg()

    def test_default_aliases(self, ctx):
        out = ctx.table("sales").agg(
            F.sum("qty"), F.count(), by=["cust"]
        ).final()
        assert "sum_qty" in out.column_names
        assert "count" in out.column_names

    def test_ci_flag_adds_sigma(self, ctx):
        out = ctx.table("sales").agg(
            F.sum("qty").alias("s"), ci=True
        )
        edf = out.run()
        early = edf.snapshots[0].frame
        assert "s__sigma" in early.column_names

    def test_var_stddev(self, ctx, catalog):
        full = catalog.table("sales").read_all()
        out = ctx.table("sales").agg(
            F.var("qty").alias("v"), F.stddev("qty").alias("sd")
        ).final()
        assert out.column("v")[0] == pytest.approx(
            np.var(full.column("qty"), ddof=1))
        assert out.column("sd")[0] == pytest.approx(
            np.std(full.column("qty"), ddof=1))


class TestSortLimitAPI:
    def test_sort_desc(self, ctx):
        out = ctx.table("sales").sort("qty", desc=True).final()
        qty = out.column("qty")
        assert (np.diff(qty) <= 0).all()

    def test_limit(self, ctx):
        assert ctx.table("sales").limit(9).final().n_rows == 9

    def test_top_k_mixed_direction(self, ctx):
        out = ctx.table("sales").top_k(["qty", "okey"], 4,
                                       desc=[True, False]).final()
        assert out.n_rows == 4

    def test_distinct(self, ctx):
        out = ctx.table("sales").distinct("region").final()
        assert sorted(out.column("region").tolist()) == ["east", "west"]


class TestSnapshotStream:
    def test_snapshots_expose_progress(self, ctx):
        edf = ctx.table("sales").sum("qty", by=["cust"]).run()
        ts = [s.t for s in edf.snapshots]
        assert ts == sorted(ts)
        assert ts[-1] == 1.0

    def test_estimates_near_final_early(self, ctx):
        edf = ctx.table("sales").sum("qty").run()
        final = edf.get_final().column("sum_qty")[0]
        first = edf.snapshots[0].frame.column("sum_qty")[0]
        assert first == pytest.approx(final, rel=0.6)
