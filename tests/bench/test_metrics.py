"""Unit tests for benchmark metrics."""

import math

import numpy as np
import pytest

from repro.bench import metrics
from repro.dataframe import DataFrame


def frame(keys, values):
    return DataFrame({"k": np.array(keys), "v": np.array(values)})


class TestMape:
    def test_exact_match_zero(self):
        exact = frame([1, 2], [10.0, 20.0])
        assert metrics.mape(exact, exact, ["k"], ["v"]) == 0.0

    def test_known_error(self):
        est = frame([1, 2], [11.0, 18.0])
        exact = frame([1, 2], [10.0, 20.0])
        got = metrics.mape(est, exact, ["k"], ["v"])
        assert got == pytest.approx(100 * (0.1 + 0.1) / 2)

    def test_missing_groups_ignored_for_mape(self):
        est = frame([1], [10.0])
        exact = frame([1, 2], [10.0, 20.0])
        assert metrics.mape(est, exact, ["k"], ["v"]) == 0.0

    def test_zero_truth_skipped(self):
        est = frame([1, 2], [5.0, 18.0])
        exact = frame([1, 2], [0.0, 20.0])
        got = metrics.mape(est, exact, ["k"], ["v"])
        assert got == pytest.approx(100 * 0.1)

    def test_nan_estimate_counts_full_error(self):
        est = frame([1], [np.nan])
        exact = frame([1], [20.0])
        assert metrics.mape(est, exact, ["k"], ["v"]) == pytest.approx(
            100.0)

    def test_global_no_keys(self):
        est = DataFrame({"v": np.array([105.0])})
        exact = DataFrame({"v": np.array([100.0])})
        assert metrics.mape(est, exact, [], ["v"]) == pytest.approx(5.0)

    def test_no_values_nan(self):
        exact = frame([1], [1.0])
        assert math.isnan(metrics.mape(exact, exact, ["k"], []))

    def test_no_common_groups_nan(self):
        est = frame([9], [1.0])
        exact = frame([1], [1.0])
        assert math.isnan(metrics.mape(est, exact, ["k"], ["v"]))


class TestRecallPrecision:
    def test_recall(self):
        est = frame([1, 2], [0.0, 0.0])
        exact = frame([1, 2, 3, 4], [0.0] * 4)
        assert metrics.recall(est, exact, ["k"]) == 50.0

    def test_precision(self):
        est = frame([1, 2, 9], [0.0] * 3)
        exact = frame([1, 2], [0.0] * 2)
        assert metrics.precision(est, exact, ["k"]) == pytest.approx(
            200 / 3)

    def test_empty_exact_full_recall(self):
        est = frame([1], [0.0])
        exact = frame([], [])
        assert metrics.recall(est, exact, ["k"]) == 100.0

    def test_empty_estimate_full_precision(self):
        est = frame([], [])
        exact = frame([1], [0.0])
        assert metrics.precision(est, exact, ["k"]) == 100.0


class TestTimeToError:
    def test_finds_first_crossing(self):
        series = [(1.0, 50.0), (2.0, 5.0), (3.0, 0.5), (4.0, 0.1)]
        assert metrics.time_to_error(series, 1.0) == 3.0

    def test_never_reached(self):
        assert metrics.time_to_error([(1.0, 10.0)], 1.0) is None

    def test_nan_skipped(self):
        series = [(1.0, float("nan")), (2.0, 0.5)]
        assert metrics.time_to_error(series, 1.0) == 2.0


class TestRelativeCIRange:
    def test_inside_interval(self):
        out = metrics.relative_ci_range(
            np.array([10.0]), np.array([11.0]), np.array([1.0]), k=4.0
        )
        assert out[0] == pytest.approx(0.25)

    def test_nan_sigma(self):
        out = metrics.relative_ci_range(
            np.array([10.0]), np.array([11.0]), np.array([np.nan]), k=4.0
        )
        assert math.isnan(out[0])

    def test_zero_sigma(self):
        out = metrics.relative_ci_range(
            np.array([10.0]), np.array([11.0]), np.array([0.0]), k=4.0
        )
        assert math.isnan(out[0])


class TestHelpers:
    def test_median_or_nan(self):
        assert metrics.median_or_nan([3.0, None, 1.0, float("nan"),
                                      2.0]) == 2.0
        assert math.isnan(metrics.median_or_nan([None]))

    def test_ratio(self):
        assert metrics.ratio(10.0, 2.0) == 5.0
        assert math.isnan(metrics.ratio(None, 2.0))
        assert math.isnan(metrics.ratio(1.0, 0.0))
