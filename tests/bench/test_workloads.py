"""Tests for benchmark workloads: modified queries, deep queries,
partition sweeps."""

import numpy as np
import pytest

from repro import WakeContext
from repro.baselines import ProgressiveScan, WanderJoinEngine
from repro.bench import workloads
from repro.tpch.queries import QUERIES


class TestMetricColumns:
    def test_covers_all_queries(self):
        assert sorted(workloads.METRIC_COLUMNS) == list(range(1, 23))

    def test_columns_exist_in_reference_output(self, tpch_tables):
        for number, (keys, values) in workloads.METRIC_COLUMNS.items():
            overrides = {18: {"threshold": 150},
                         11: {"fraction": 0.005}}.get(number, {})
            frame = QUERIES[number].run_reference(tpch_tables.tables,
                                                  **overrides)
            for column in (*keys, *values):
                assert column in frame.column_names, (
                    f"q{number:02d} missing metric column {column!r}"
                )


class TestModifiedQueries:
    def test_q1_wake_matches_exact(self, tpch):
        catalog, tables = tpch
        ctx = WakeContext(catalog)
        final = workloads.modified_q1_wake(ctx).final()
        exact = workloads.modified_q1_exact(tables.tables)
        got = dict(zip(zip(final.column("l_returnflag").tolist(),
                           final.column("l_linestatus").tolist()),
                       final.column("sum_qty").tolist()))
        expected = dict(zip(zip(exact.column("l_returnflag").tolist(),
                                exact.column("l_linestatus").tolist()),
                            exact.column("sum_qty").tolist()))
        assert got == pytest.approx(expected)

    def test_q1_progressive_converges(self, tpch):
        catalog, tables = tpch
        scan = ProgressiveScan(catalog.table("lineitem"),
                               chunk_rows=5000, middleware_overhead=0.0)
        estimates = scan.run(workloads.modified_q1_progressive())
        exact = workloads.modified_q1_exact(tables.tables)
        final = estimates[-1].frame
        got = dict(zip(zip(final.column("l_returnflag").tolist(),
                           final.column("l_linestatus").tolist()),
                       final.column("sum_qty").tolist()))
        expected = dict(zip(zip(exact.column("l_returnflag").tolist(),
                                exact.column("l_linestatus").tolist()),
                            exact.column("sum_qty").tolist()))
        assert got == pytest.approx(expected)

    def test_q6_wake_and_progressive_agree(self, tpch):
        catalog, tables = tpch
        ctx = WakeContext(catalog)
        wake_final = workloads.modified_q6_wake(ctx).final()
        exact = workloads.modified_q6_exact(tables.tables)
        assert wake_final.column("revenue")[0] == pytest.approx(
            exact.column("revenue")[0])
        scan = ProgressiveScan(catalog.table("lineitem"),
                               chunk_rows=5000, middleware_overhead=0.0)
        prog_final = scan.run(workloads.modified_q6_progressive())[-1]
        assert prog_final.frame.column("revenue")[0] == pytest.approx(
            exact.column("revenue")[0])

    @pytest.mark.parametrize("name", ["q3", "q7", "q10"])
    def test_walk_queries_estimate_join_sums(self, tpch, name):
        catalog, tables = tpch
        walk = getattr(workloads, f"modified_{name}_walk")()
        exact = getattr(workloads, f"modified_{name}_exact")(
            tables.tables)
        engine = WanderJoinEngine(tables.tables, seed=17)
        estimate = engine.run(walk, max_walks=3000,
                              report_every=3000)[-1].estimate
        assert estimate == pytest.approx(exact, rel=0.35)

    @pytest.mark.parametrize("name", ["q3", "q7", "q10"])
    def test_wake_modified_queries_exact(self, tpch, name):
        catalog, tables = tpch
        ctx = WakeContext(catalog)
        plan = getattr(workloads, f"modified_{name}_wake")(ctx)
        exact = getattr(workloads, f"modified_{name}_exact")(
            tables.tables)
        assert plan.final().column("revenue")[0] == pytest.approx(exact)


class TestDeepQueries:
    @pytest.fixture(scope="class")
    def deep(self, tmp_path_factory):
        return workloads.generate_deep_dataset(
            tmp_path_factory.mktemp("deep"), n_rows=5_000,
            n_partitions=5, seed=1,
        )

    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_wake_matches_reference(self, deep, depth):
        ctx = WakeContext(deep.catalog)
        plan = workloads.build_deep_query(ctx, depth)
        got = plan.final()
        expected = workloads.deep_query_reference(deep.table, depth)
        assert got.n_rows == expected.n_rows
        alias = f"agg{depth + 1}" if depth else "agg0"
        assert got.column(alias)[0] == pytest.approx(
            expected.column(alias)[0])

    def test_depth_validation(self, deep):
        ctx = WakeContext(deep.catalog)
        with pytest.raises(ValueError):
            workloads.build_deep_query(ctx, -1)
        with pytest.raises(ValueError):
            workloads.build_deep_query(ctx, 11)

    def test_dataset_shape(self, deep):
        assert deep.table.n_rows == 5_000
        assert deep.catalog.table("deep").n_partitions == 5
        for i in range(1, 11):
            uniques = np.unique(deep.table.column(f"c{i}"))
            assert len(uniques) == workloads.DEEP_UNIQUES


class TestPartitionSweep:
    def test_reload_with_partitions(self, tpch, tmp_path):
        _catalog, tables = tpch
        catalog4 = workloads.reload_with_partitions(
            tables, tmp_path / "p4", fact_partitions=4)
        catalog16 = workloads.reload_with_partitions(
            tables, tmp_path / "p16", fact_partitions=16)
        assert catalog4.table("lineitem").n_partitions == 4
        assert catalog16.table("lineitem").n_partitions == 16
        assert (
            catalog4.table("lineitem").total_tuples
            == catalog16.table("lineitem").total_tuples
        )
