"""Tests for the experiment harness and report formatting."""

import pytest

from repro import F, WakeContext
from repro.bench import run_wake
from repro.bench.report import ascii_timeline, banner, format_table
from repro.dataframe import AggSpec, group_aggregate


class TestRunWake:
    def test_quality_trace(self, catalog, sales_frame):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(
            F.sum("qty").alias("total"), by=["cust"]
        )
        exact = group_aggregate(sales_frame, ["cust"],
                                [AggSpec("sum", "qty", "total")])
        run = run_wake(ctx, plan, exact, keys=["cust"],
                       values=["total"])
        assert len(run.quality) == len(run.edf)
        assert run.quality[-1].mape == pytest.approx(0.0, abs=1e-9)
        assert run.quality[-1].recall == 100.0
        assert run.first_latency <= run.final_latency

    def test_time_to_error_requires_recall(self, catalog, sales_frame):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(
            F.sum("qty").alias("total"), by=["cust"]
        )
        exact = group_aggregate(sales_frame, ["cust"],
                                [AggSpec("sum", "qty", "total")])
        run = run_wake(ctx, plan, exact, keys=["cust"],
                       values=["total"])
        t = run.time_to_error(1000.0)  # generous threshold
        assert t is not None
        assert t <= run.final_latency + 1e-6

    def test_memory_tracking(self, catalog):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").sum("qty")
        run = run_wake(ctx, plan, track_memory=True)
        assert run.peak_bytes > 0

    def test_error_series_shape(self, catalog, sales_frame):
        ctx = WakeContext(catalog)
        plan = ctx.table("sales").agg(F.sum("qty").alias("total"))
        exact = run_wake(ctx, plan).edf.get_final()
        run = run_wake(ctx, plan, exact, keys=[], values=["total"])
        series = run.error_series()
        assert len(series) == len(run.edf)
        walls = [w for w, _ in series]
        assert walls == sorted(walls)


class TestLatencyRow:
    def make(self):
        from repro.bench.harness import LatencyRow

        return LatencyRow(
            query="q01", wake_first=0.01, wake_final=0.2,
            exact_memory=0.05, exact_scan=0.3, first_mape=2.5,
        )

    def test_speedup(self):
        assert self.make().first_speedup_vs_scan == pytest.approx(30.0)

    def test_slowdown(self):
        assert self.make().final_slowdown_vs_memory == pytest.approx(
            4.0)


class TestTimedAndSeries:
    def test_timed_returns_result_and_elapsed(self):
        from repro.bench.harness import timed

        result, elapsed = timed(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0.0

    def test_converged_series_gates_on_recall(self, catalog,
                                              sales_frame):
        from repro.bench.harness import SnapshotQuality, WakeRun
        from repro.core.edf import EvolvingDataFrame

        run = WakeRun(edf=EvolvingDataFrame())
        run.quality = [
            SnapshotQuality(0, 0.5, 1.0, 10, mape=0.1, recall=50.0,
                            precision=100.0),
            SnapshotQuality(1, 1.0, 2.0, 20, mape=0.2, recall=100.0,
                            precision=100.0),
        ]
        # first snapshot has low recall: its tiny MAPE must not count
        assert run.time_to_error(1.0) == 2.0


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["q", "latency"],
                            [["q1", 1.5], ["q10", 10.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_nan(self):
        text = format_table(["v"], [[float("nan")]])
        assert "nan" in text

    def test_ascii_timeline(self):
        text = ascii_timeline(
            [("read", 0.0, 0.5), ("agg", 0.4, 1.0)], width=40
        )
        assert "read" in text and "agg" in text
        assert "#" in text

    def test_ascii_timeline_empty(self):
        assert "(no events)" in ascii_timeline([])

    def test_banner(self):
        assert "TITLE" in banner("TITLE")
