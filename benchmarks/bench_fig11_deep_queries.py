"""Experiment E6 — Fig 11 + §8.6: synthetic deep queries.

Alternating max/sum aggregation chains of depth d over a 10-group-column
table.  Paper's claims to reproduce in shape:

* Wake emits results at a steady pace at every depth (1st/10th/final
  latencies all well-defined);
* execution time scales with the primary group cardinality O(4^d)
  per-partition merge work on top of the linear scan — deeper queries
  cost more, but stay far from exponential blow-up at moderate depths;
* every depth converges to the exact answer.
"""

import pytest

from repro import WakeContext
from repro.bench import run_wake, timed
from repro.bench.report import banner, format_table
from repro.bench.workloads import (
    build_deep_query,
    deep_query_reference,
    generate_deep_dataset,
)

DEPTHS = (0, 1, 2, 3, 4, 5, 6)
N_ROWS = 60_000
N_PARTITIONS = 20


@pytest.fixture(scope="module")
def deep_dataset(tmp_path_factory):
    return generate_deep_dataset(
        tmp_path_factory.mktemp("deep_bench"), n_rows=N_ROWS,
        n_partitions=N_PARTITIONS, seed=3,
    )


def run_depths(deep_dataset):
    rows = []
    worst_rel_error = 0.0
    for depth in DEPTHS:
        ctx = WakeContext(deep_dataset.catalog)
        plan = build_deep_query(ctx, depth)
        run = run_wake(ctx, plan)
        snapshots = run.edf.snapshots
        tenth = (
            snapshots[9].wall_time if len(snapshots) >= 10 else
            float("nan")
        )
        expected, exact_time = timed(
            deep_query_reference, deep_dataset.table, depth
        )
        got = run.edf.get_final()
        alias = f"agg{depth + 1}" if depth else "agg0"
        assert got.n_rows == expected.n_rows
        worst_rel_error = max(
            worst_rel_error,
            abs(got.column(alias)[0] - expected.column(alias)[0])
            / abs(expected.column(alias)[0]),
        )
        rows.append([
            depth, run.first_latency, tenth, run.final_latency,
            exact_time, len(snapshots),
        ])
    return rows, worst_rel_error


def test_fig11_deep_query_scaling(deep_dataset, benchmark, guard, emit):
    rows, worst_rel_error = benchmark.pedantic(
        lambda: run_depths(deep_dataset), rounds=1, iterations=1
    )
    guard("final_answer_rel_error_worst", worst_rel_error, 1e-6,
          op="<=")
    emit(banner("Fig 11 — deep query latency vs depth "
                f"({N_ROWS} rows, {N_PARTITIONS} partitions, "
                f"alternating max/sum)"))
    emit(format_table(
        ["depth", "wake-1st", "wake-10th", "wake-final", "exact",
         "snapshots"],
        rows,
    ))
    firsts = [r[1] for r in rows]
    finals = [r[3] for r in rows]
    # Results appear at a regular pace at every depth: the first result
    # never needs the whole input.
    for depth, first, final in zip(DEPTHS, firsts, finals):
        assert first < final, f"depth {depth}: no early output"
    # Cost grows with depth (merge work per §8.6) ...
    assert finals[-1] > finals[0]
    # ... but stays polynomial-ish at these depths, not exponential in
    # wall-clock (group cardinality saturates at the data size).
    guard("deepest_vs_shallowest_final_ratio", finals[-1] / finals[0],
          60.0, op="<")