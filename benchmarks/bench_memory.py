"""Experiment E9 — §8.2 memory note: Wake's peak memory vs the in-memory
exact engine on join-heavy queries.

Paper's claim to reproduce in shape: Wake's streaming execution holds a
fraction of the joined data resident at a time, so its peak memory stays
below the all-at-once engine's (paper: 4.3× less on average, Polars OOMs
on Q7/Q9 at 100 GB).  Measured with tracemalloc over identical kernels.
"""

from conftest import BENCH_OVERRIDES

from repro.baselines import ExactEngine
from repro.bench import run_wake
from repro.bench.report import banner, format_table
from repro.tpch.queries import QUERIES

JOIN_HEAVY = (5, 7, 9, 10)


def run_memory(bench_data, bench_ctx):
    _catalog, tables = bench_data
    engine = ExactEngine(tables=tables, mode="memory")
    rows = []
    for number in JOIN_HEAVY:
        query = QUERIES[number]
        overrides = BENCH_OVERRIDES.get(number, {})
        exact = engine.run(query, track_memory=True, **overrides)
        plan = query.build_plan(bench_ctx, **overrides)
        run = run_wake(bench_ctx, plan, capture_all=False,
                       track_memory=True)
        rows.append([
            query.name,
            run.peak_bytes / 1e6,
            exact.peak_bytes / 1e6,
            exact.peak_bytes / max(run.peak_bytes, 1),
        ])
    return rows


def test_memory_footprint(bench_data, bench_ctx, benchmark, guard,
                          emit):
    rows = benchmark.pedantic(
        lambda: run_memory(bench_data, bench_ctx), rounds=1,
        iterations=1,
    )
    emit(banner("§8.2 memory — peak traced MB, Wake vs exact in-memory"))
    emit(format_table(
        ["query", "wake-MB", "exact-MB", "exact/wake"], rows
    ))
    # Wake should use less peak memory than the all-at-once engine on
    # most join-heavy queries.
    ratios = [r[3] for r in rows]
    wake_wins = sum(1 for r in ratios if r > 1.0)
    guard("wake_memory_win_fraction", wake_wins / len(ratios), 0.5)