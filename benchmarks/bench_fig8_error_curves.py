"""Experiment E2 — Fig 8 + §8.3: MAPE and recall over time for the three
query categories.

* category "mape"   (Q1, Q8): MAPE decreases over time; recall hits 100%
  early (low-cardinality non-clustered group-by).
* category "recall" (Q3, Q18): aggregate values are exact (MAPE = 0);
  recall grows roughly linearly with progress (clustered group-by keys).
* category "mixed"  (Q10, Q21): recall rises quickly, but MAPE decays
  slowly (diverse group keys → few samples per group).
"""

import numpy as np

from conftest import BENCH_OVERRIDES

from repro.baselines import ExactEngine
from repro.bench import run_wake
from repro.bench.report import banner, format_table
from repro.bench.workloads import METRIC_COLUMNS
from repro.tpch.queries import QUERIES

CURVE_QUERIES = {
    "mape": (1, 8),
    "recall": (3, 18),
    "mixed": (10, 21),
}


def run_curves(bench_data, bench_ctx):
    _catalog, tables = bench_data
    memory_engine = ExactEngine(tables=tables, mode="memory")
    curves = {}
    for category, numbers in CURVE_QUERIES.items():
        for number in numbers:
            query = QUERIES[number]
            overrides = BENCH_OVERRIDES.get(number, {})
            keys, values = METRIC_COLUMNS[number]
            exact = memory_engine.run(query, **overrides).frame
            plan = query.build_plan(bench_ctx, **overrides)
            run = run_wake(bench_ctx, plan, exact=exact, keys=keys,
                           values=values)
            curves[(category, query.name)] = run
    return curves


def test_fig8_error_and_recall_curves(bench_data, bench_ctx, benchmark,
                                      emit):
    curves = benchmark.pedantic(
        lambda: run_curves(bench_data, bench_ctx), rounds=1,
        iterations=1,
    )
    for (category, name), run in curves.items():
        emit(banner(f"Fig 8 — {name} ({category}): error/recall over "
                    f"time"))
        emit(format_table(
            ["t", "wall(s)", "MAPE%", "recall%", "precision%"],
            [
                [q.t, q.wall_time, q.mape, q.recall, q.precision]
                for q in run.quality
            ],
        ))

    # Category shape assertions (§8.3) -----------------------------------
    for number in CURVE_QUERIES["mape"]:
        run = curves[("mape", QUERIES[number].name)]
        final = run.quality[-1]
        assert final.mape < 1e-6, "category-1 queries end exact"
        early_recall = [q.recall for q in run.quality
                        if q.t <= 0.6]
        assert early_recall and max(early_recall) == 100.0, (
            "category-1 recall reaches 100% early"
        )

    for number in CURVE_QUERIES["recall"]:
        run = curves[("recall", QUERIES[number].name)]
        mapes = [q.mape for q in run.quality
                 if not np.isnan(q.mape)]
        assert all(m < 1e-6 for m in mapes), (
            "clustered-key aggregates are exact at every snapshot"
        )
        recalls = [q.recall for q in run.quality]
        assert recalls == sorted(recalls), "recall grows monotonically"
        ts = np.array([q.t for q in run.quality])
        rs = np.array(recalls, dtype=float)
        if len(ts) >= 4 and rs.std() > 0:
            corr = np.corrcoef(ts, rs)[0, 1]
            assert corr > 0.8, "recall grows ~linearly with progress"

    for number in CURVE_QUERIES["mixed"]:
        run = curves[("mixed", QUERIES[number].name)]
        final = run.quality[-1]
        assert final.recall == 100.0
        assert final.mape < 1e-6
        mid = [q for q in run.quality if 0.3 <= q.t <= 0.8]
        assert any(q.recall > 50.0 for q in mid), (
            "mixed-category recall rises well before completion"
        )
