"""Experiment E2 — Fig 8 + §8.3: MAPE and recall over time for the three
query categories.

* category "mape"   (Q1, Q8): MAPE decreases over time; recall hits 100%
  early (low-cardinality non-clustered group-by).
* category "recall" (Q3, Q18): aggregate values are exact (MAPE = 0);
  recall grows roughly linearly with progress (clustered group-by keys).
* category "mixed"  (Q10, Q21): recall rises quickly, but MAPE decays
  slowly (diverse group keys → few samples per group).
"""

import numpy as np

from conftest import BENCH_OVERRIDES

from repro.baselines import ExactEngine
from repro.bench import run_wake
from repro.bench.report import banner, format_table
from repro.bench.workloads import METRIC_COLUMNS
from repro.tpch.queries import QUERIES

CURVE_QUERIES = {
    "mape": (1, 8),
    "recall": (3, 18),
    "mixed": (10, 21),
}


def run_curves(bench_data, bench_ctx):
    _catalog, tables = bench_data
    memory_engine = ExactEngine(tables=tables, mode="memory")
    curves = {}
    for category, numbers in CURVE_QUERIES.items():
        for number in numbers:
            query = QUERIES[number]
            overrides = BENCH_OVERRIDES.get(number, {})
            keys, values = METRIC_COLUMNS[number]
            exact = memory_engine.run(query, **overrides).frame
            plan = query.build_plan(bench_ctx, **overrides)
            run = run_wake(bench_ctx, plan, exact=exact, keys=keys,
                           values=values)
            curves[(category, query.name)] = run
    return curves


def test_fig8_error_and_recall_curves(bench_data, bench_ctx, benchmark,
                                      guard, emit):
    curves = benchmark.pedantic(
        lambda: run_curves(bench_data, bench_ctx), rounds=1,
        iterations=1,
    )
    for (category, name), run in curves.items():
        emit(banner(f"Fig 8 — {name} ({category}): error/recall over "
                    f"time"))
        emit(format_table(
            ["t", "wall(s)", "MAPE%", "recall%", "precision%"],
            [
                [q.t, q.wall_time, q.mape, q.recall, q.precision]
                for q in run.quality
            ],
        ))

    # Category shape assertions (§8.3) -----------------------------------
    # Category-1 queries end exact.
    cat1_final_mapes = []
    for number in CURVE_QUERIES["mape"]:
        run = curves[("mape", QUERIES[number].name)]
        cat1_final_mapes.append(run.quality[-1].mape)
        early_recall = [q.recall for q in run.quality
                        if q.t <= 0.6]
        assert early_recall and max(early_recall) == 100.0, (
            "category-1 recall reaches 100% early"
        )
    guard("cat1_final_mape_worst", max(cat1_final_mapes), 1e-6, op="<")

    # Clustered-key aggregates are exact at every snapshot, with recall
    # growing monotonically (~linearly) with progress.
    cat2_mapes = [0.0]
    cat2_corrs = []
    for number in CURVE_QUERIES["recall"]:
        run = curves[("recall", QUERIES[number].name)]
        cat2_mapes.extend(q.mape for q in run.quality
                          if not np.isnan(q.mape))
        recalls = [q.recall for q in run.quality]
        assert recalls == sorted(recalls), "recall grows monotonically"
        ts = np.array([q.t for q in run.quality])
        rs = np.array(recalls, dtype=float)
        if len(ts) >= 4 and rs.std() > 0:
            cat2_corrs.append(float(np.corrcoef(ts, rs)[0, 1]))
    guard("cat2_snapshot_mape_worst", max(cat2_mapes), 1e-6, op="<")
    if cat2_corrs:
        guard("cat2_recall_progress_corr_min", min(cat2_corrs), 0.8,
              op=">")

    # Mixed-category queries end exact with recall rising well before
    # completion.
    mixed_final_mapes = []
    mixed_mid_recalls = []
    for number in CURVE_QUERIES["mixed"]:
        run = curves[("mixed", QUERIES[number].name)]
        final = run.quality[-1]
        assert final.recall == 100.0
        mixed_final_mapes.append(final.mape)
        mid = [q.recall for q in run.quality if 0.3 <= q.t <= 0.8]
        mixed_mid_recalls.append(max(mid) if mid else 0.0)
    guard("mixed_final_mape_worst", max(mixed_final_mapes), 1e-6,
          op="<")
    guard("mixed_mid_recall_min", min(mixed_mid_recalls), 50.0, op=">")
