"""Experiment E8 — Fig 13 / Appendix C: pipelined execution timeline.

Runs Q6 on the threaded executor (one thread per node, bounded channels)
and renders the per-node busy intervals.  Paper's claim to reproduce in
shape: downstream operators (filter/map/agg) process partition k while
the reader fetches partition k+1 — their busy spans overlap in time.
"""

from repro import WakeContext
from repro.bench.report import ascii_timeline, banner
from repro.tpch.queries import QUERIES


def run_pipeline(bench_data):
    catalog, _tables = bench_data
    ctx = WakeContext(catalog, executor="threads")
    plan = QUERIES[6].build_plan(ctx)
    # A small per-partition fetch delay makes the reader's cadence
    # visible, like the IO time of the paper's 512 MB parquet reads.
    edf = ctx.run(plan, record_timeline=True, source_delay=0.005)
    executor = ctx.last_executor
    assert edf.is_final
    return executor.timeline


def test_pipeline_io_overlap(bench_data, benchmark, guard, emit):
    """Appendix C's quantitative claim, measured honestly on this
    substrate.

    The paper's Rust engine overlaps per-node *compute* across cores;
    CPython's GIL precludes that, so the reproducible part of the claim
    is structural (the timeline test above: downstream nodes are busy
    while the reader fetches) while the wall-clock gain is bounded by
    the little GIL-free work available and is typically cancelled out by
    threading overhead at laptop scale.  This test records both numbers
    and asserts only that pipelining overhead stays bounded — the
    substrate-dependence is documented in EXPERIMENTS.md.
    """
    catalog, _tables = bench_data
    delay = 0.02
    n_parts = catalog.table("lineitem").n_partitions

    def measure():
        base_ctx = WakeContext(catalog, executor="threads")
        base = base_ctx.run(
            QUERIES[1].build_plan(base_ctx), capture_all=False
        ).snapshots[-1].wall_time
        io_ctx = WakeContext(catalog, executor="threads")
        with_io = io_ctx.run(
            QUERIES[1].build_plan(io_ctx),
            capture_all=False, source_delay=delay,
        ).snapshots[-1].wall_time
        return base, with_io

    base, with_io = benchmark.pedantic(measure, rounds=1, iterations=1)
    io_time = delay * n_parts
    serial_estimate = base + io_time
    hidden = serial_estimate - with_io
    emit(banner("Appendix C — IO/compute overlap on Q1 (threaded)"))
    emit(f"simulated IO        : {io_time * 1000:.0f} ms "
         f"({n_parts} partitions x {delay * 1000:.0f} ms)")
    emit(f"compute (no IO)     : {base * 1000:.0f} ms")
    emit(f"serial estimate     : {serial_estimate * 1000:.0f} ms")
    emit(f"pipelined (with IO) : {with_io * 1000:.0f} ms")
    emit(f"IO hidden by overlap: {hidden * 1000:.0f} ms "
         f"({100 * hidden / io_time:.0f}% of IO; GIL-bound — see "
         f"EXPERIMENTS.md)")
    # Pipelining overhead must stay bounded.
    guard("pipelined_vs_serial_estimate_ratio",
          with_io / serial_estimate, 1.3, op="<")


def test_fig13_pipelined_timeline(bench_data, benchmark, guard, emit):
    timeline = benchmark.pedantic(lambda: run_pipeline(bench_data),
                                  rounds=1, iterations=1)
    events = [(e.node, e.start, e.end) for e in timeline]
    emit(banner("Fig 13 — pipelined execution of Q6 (threaded executor)"))
    emit(ascii_timeline(events, width=68))

    nodes = {name for name, _s, _e in events}
    guard("active_operator_count", len(nodes), 2)

    # Pipelining: the aggregate's busy spans interleave with upstream
    # spans rather than strictly following them.
    agg_spans = sorted(
        (s, e) for n, s, e in events if n.startswith("agg"))
    upstream_spans = sorted(
        (s, e) for n, s, e in events if not n.startswith("agg"))
    assert agg_spans and upstream_spans
    first_agg_start = agg_spans[0][0]
    last_upstream_end = max(e for _s, e in upstream_spans)
    assert first_agg_start < last_upstream_end, (
        "the aggregate starts before upstream work has finished "
        "(pipeline parallelism)"
    )