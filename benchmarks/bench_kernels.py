"""Kernel micro-benchmarks: the substrate operations every experiment
sits on (multi-round timings, unlike the single-shot experiment tests).
"""

import numpy as np
import pytest

from repro.core.estimators import estimate_count_distinct
from repro.core.state import GroupedAggregateState
from repro.dataframe import (
    AggSpec,
    DataFrame,
    group_aggregate,
    hash_join,
    sort_frame,
)

N = 200_000
N_GROUPS = 1_000


@pytest.fixture(scope="module")
def fact():
    rng = np.random.default_rng(0)
    return DataFrame(
        {
            "k": rng.integers(0, N_GROUPS, size=N).astype(np.int64),
            "v": rng.normal(100.0, 15.0, size=N),
            "w": rng.uniform(0.0, 1.0, size=N),
        }
    )


@pytest.fixture(scope="module")
def dim():
    rng = np.random.default_rng(1)
    return DataFrame(
        {
            "k": np.arange(N_GROUPS, dtype=np.int64),
            "name": np.array([f"g{i}" for i in range(N_GROUPS)]),
            "flag": rng.integers(0, 2, size=N_GROUPS).astype(np.bool_),
        }
    )


def test_kernel_group_aggregate(fact, benchmark):
    specs = [
        AggSpec("sum", "v", "s"),
        AggSpec("count", None, "n"),
        AggSpec("min", "v", "lo"),
        AggSpec("max", "v", "hi"),
    ]
    out = benchmark(group_aggregate, fact, ["k"], specs)
    assert out.n_rows == N_GROUPS


def test_kernel_hash_join(fact, dim, benchmark):
    out = benchmark(hash_join, fact, dim, ["k"], ["k"])
    assert out.n_rows == N


def test_kernel_sort(fact, benchmark):
    out = benchmark(sort_frame, fact, ["v"], False)
    assert out.n_rows == N


def test_kernel_incremental_merge(fact, benchmark):
    """The edf aggregate's intrinsic-state merge (consume 10 partials)."""
    parts = [fact.slice(i * (N // 10), (i + 1) * (N // 10))
             for i in range(10)]

    def consume():
        state = GroupedAggregateState(
            by=("k",), specs=(AggSpec("sum", "v", "s"),)
        )
        for part in parts:
            state.consume_delta(part)
        return state.n_groups

    assert benchmark(consume) == N_GROUPS


def test_kernel_count_distinct_estimator(benchmark):
    rng = np.random.default_rng(2)
    y = rng.uniform(10, 900, size=10_000)
    x = y * rng.uniform(1.0, 5.0, size=10_000)
    x_hat = x * rng.uniform(1.5, 12.0, size=10_000)
    out = benchmark(estimate_count_distinct, y, x, x_hat)
    assert np.isfinite(out).all()
