"""Experiment E13 — sharded data parallelism + flat-latency operator guards.

Three measurements guard this PR:

* **core scaling** — a shuffle-mode TPC-H-shaped aggregate (group by
  ``l_suppkey`` over a lineitem-shaped fact table) under the threaded
  executor must run >= 2x faster at ``parallelism=4`` than unsharded,
  with byte-identical finals.  The speedup assertion needs real cores
  and is skipped below 4 CPUs (the parity assertion always runs).
* **flat distinct latency** — per-message ``DistinctOperator`` cost over
  128 partials of mostly-new keys must not grow with stream position
  (late/early median <= 2), unlike the seed path that re-encoded the
  whole seen history through ``shared_codes`` per message.
* **flat top-k latency** — per-message ``SortLimitOperator`` cost with
  ``limit=k`` must track the partial, not the stream, unlike the seed
  path that re-concatenated and re-sorted the full history per message.

Scale knobs: ``REPRO_BENCH_PAR_ROWS`` (default 1_200_000) and
``REPRO_BENCH_PAR_PARTITIONS`` (default 12) for the scaling experiment.
"""

import os
import time

import numpy as np
import pytest

from repro import WakeContext
from repro.api.functions import F
from repro.dataframe import DataFrame
from repro.dataframe.join import anti_join_mask, shared_codes
from repro.dataframe.groupby import distinct_rows
from repro.dataframe.sort import sort_frame
from repro.core.properties import Delivery, Progress, StreamInfo
from repro.engine.message import Message
from repro.engine.ops import DistinctOperator, SortLimitOperator
from repro.storage import Catalog, write_table
from repro.bench.report import banner, format_table

PAR_ROWS = int(os.environ.get("REPRO_BENCH_PAR_ROWS", "1200000"))
PAR_PARTITIONS = int(os.environ.get("REPRO_BENCH_PAR_PARTITIONS", "12"))
N_PARTS = 128
ROWS_PER_PART = 2_000


@pytest.fixture(scope="module")
def parallel_ctx(tmp_path_factory):
    """A lineitem-shaped fact table large enough for core scaling."""
    rng = np.random.default_rng(13)
    n = PAR_ROWS
    frame = DataFrame({
        "l_orderkey": np.arange(n, dtype=np.int64) // 4,
        "l_suppkey": rng.integers(0, 1_000, size=n).astype(np.int64),
        "l_quantity": rng.integers(1, 51, size=n).astype(np.float64),
        "l_extendedprice": rng.normal(30_000.0, 8_000.0, size=n),
        "l_discount": rng.uniform(0.0, 0.1, size=n),
    })
    directory = tmp_path_factory.mktemp("exchange_bench")
    catalog = Catalog(root=str(directory))
    write_table(
        catalog, directory / "lineitem", "lineitem", frame,
        rows_per_partition=max(1, n // PAR_PARTITIONS),
        primary_key=["l_orderkey"], clustering_key=["l_orderkey"],
    )
    return WakeContext(catalog)


def _scaling_plan(ctx):
    return ctx.table("lineitem").agg(
        F.sum("l_extendedprice").alias("revenue"),
        F.avg("l_quantity").alias("avg_qty"),
        F.var("l_extendedprice").alias("var_price"),
        F.median("l_discount").alias("med_disc"),
        by=["l_suppkey"],
    )


def test_parallel_speedup(parallel_ctx, emit, guard):
    """>= 2x threaded wall-clock at parallelism=4, identical finals."""
    timings = {}
    finals = {}
    for shards in (1, 4):
        start = time.perf_counter()
        edf = parallel_ctx.run(
            _scaling_plan(parallel_ctx), capture_all=False,
            executor="threads", parallelism=shards,
        )
        timings[shards] = time.perf_counter() - start
        finals[shards] = edf.get_final()

    speedup = timings[1] / timings[4]
    cpus = os.cpu_count() or 1
    emit(banner(
        f"E13 — sharded shuffle aggregate, threaded executor "
        f"({PAR_ROWS:,} rows x {PAR_PARTITIONS} partitions, "
        f"{cpus} cpus)"
    ))
    emit(format_table(
        ["parallelism", "wall s", "speedup"],
        [["1 (unsharded)", timings[1], 1.0],
         ["4 shards", timings[4], speedup]],
    ))

    base, sharded = finals[1], finals[4]
    assert tuple(base.column_names) == tuple(sharded.column_names)
    for name in base.column_names:
        assert (base.column(name).tobytes()
                == sharded.column(name).tobytes()), (
            f"column {name!r} drifted under sharding"
        )
    if cpus < 4:
        pytest.skip(
            f"speedup assertion needs >= 4 cpus (have {cpus}); "
            f"measured {speedup:.2f}x"
        )
    guard("threaded_wall_clock_speedup_p4", speedup, 2.0)


# ---------------------------------------------------------------------------
# Flat-latency guards for the distinct / top-k rework
# ---------------------------------------------------------------------------

def _stream_message(frame, index, total_parts):
    done = (index + 1) * ROWS_PER_PART
    return Message(
        frame=frame,
        progress=Progress(done={"t": done},
                          total={"t": total_parts * ROWS_PER_PART}),
        kind=Delivery.DELTA,
    )


@pytest.fixture(scope="module")
def distinct_parts():
    rng = np.random.default_rng(5)
    n = N_PARTS * ROWS_PER_PART
    frame = DataFrame({
        # ~85% of keys are globally unique: the worst case for a
        # seen-set, since it grows by almost every message.
        "k": rng.permutation(
            np.concatenate([
                np.arange(int(n * 0.85), dtype=np.int64),
                rng.integers(0, 1_000, size=n - int(n * 0.85)),
            ])
        ),
        "v": rng.normal(size=n),
    })
    return [
        frame.slice(i * ROWS_PER_PART, (i + 1) * ROWS_PER_PART)
        for i in range(N_PARTS)
    ]


class SeedStyleDistinct:
    """The seed's path: re-encode the whole seen history per message."""

    def __init__(self, keys):
        self.keys = keys
        self.seen = None

    def consume(self, frame):
        fresh = distinct_rows(frame, self.keys)
        if self.seen is not None and fresh.n_rows:
            left, right = shared_codes(
                [fresh.column(k) for k in self.keys],
                [self.seen.column(k) for k in self.keys],
            )
            fresh = fresh.mask(anti_join_mask(left, right))
        if fresh.n_rows:
            keys = fresh.select(list(self.keys))
            self.seen = (keys if self.seen is None
                         else DataFrame.concat([self.seen, keys]))
        return fresh


def _window_medians(times):
    q = len(times) // 4
    early = float(np.median(np.array(times[q:2 * q])))
    late = float(np.median(np.array(times[-q:])))
    return early, late


def test_distinct_latency_flat(distinct_parts, emit, guard):
    op = DistinctOperator("d", subset=["k"])
    op.bind((StreamInfo(schema=distinct_parts[0].schema,
                        delivery=Delivery.DELTA),))
    inc_times, inc_rows = [], 0
    for i, part in enumerate(distinct_parts):
        start = time.perf_counter()
        out = op.on_message(0, _stream_message(part, i, N_PARTS))
        inc_times.append(time.perf_counter() - start)
        inc_rows += out[0].frame.n_rows

    seed = SeedStyleDistinct(("k",))
    seed_times, seed_rows = [], 0
    for part in distinct_parts:
        start = time.perf_counter()
        seed_rows += seed.consume(part).n_rows
        seed_times.append(time.perf_counter() - start)
    assert inc_rows == seed_rows

    inc_early, inc_late = _window_medians(inc_times)
    seed_early, seed_late = _window_medians(seed_times)
    emit(banner(
        f"E13 — incremental distinct per message ({N_PARTS} partials "
        f"x {ROWS_PER_PART} rows, ~85% unique keys)"
    ))
    emit(format_table(
        ["strategy", "partials 32-64 ms", "partials 96-128 ms",
         "late/early", "total ms"],
        [
            ["grouper seen-set", inc_early * 1e3, inc_late * 1e3,
             inc_late / inc_early, sum(inc_times) * 1e3],
            ["seed re-encode history", seed_early * 1e3,
             seed_late * 1e3, seed_late / seed_early,
             sum(seed_times) * 1e3],
        ],
    ))
    guard("distinct_late_early_ratio", inc_late / inc_early, 2.0,
          op="<=")
    guard("distinct_late_speedup_vs_seed", seed_late / inc_late, 2.0)


@pytest.fixture(scope="module")
def sort_parts():
    rng = np.random.default_rng(6)
    n = N_PARTS * ROWS_PER_PART
    frame = DataFrame({
        "v": rng.normal(size=n),
        "k": rng.integers(0, 10_000, size=n).astype(np.int64),
    })
    return [
        frame.slice(i * ROWS_PER_PART, (i + 1) * ROWS_PER_PART)
        for i in range(N_PARTS)
    ]


def test_topk_latency_flat(sort_parts, emit, guard):
    op = SortLimitOperator("t", by=["v"], ascending=False, limit=10)
    op.bind((StreamInfo(schema=sort_parts[0].schema,
                        delivery=Delivery.DELTA),))
    inc_times, answer = [], None
    for i, part in enumerate(sort_parts):
        start = time.perf_counter()
        answer = op.on_message(0, _stream_message(part, i, N_PARTS))
        inc_times.append(time.perf_counter() - start)

    seed_times, parts_so_far, seed_answer = [], [], None
    for part in sort_parts:
        start = time.perf_counter()
        parts_so_far.append(part)
        whole = DataFrame.concat(parts_so_far)
        seed_answer = sort_frame(whole, ["v"], False).head(10)
        seed_times.append(time.perf_counter() - start)
    assert answer is not None and seed_answer is not None
    assert answer[0].frame.equals(seed_answer, rtol=0, atol=0)

    inc_early, inc_late = _window_medians(inc_times)
    seed_early, seed_late = _window_medians(seed_times)
    emit(banner(
        f"E13 — top-10 sort/limit per message ({N_PARTS} partials x "
        f"{ROWS_PER_PART} rows)"
    ))
    emit(format_table(
        ["strategy", "partials 32-64 ms", "partials 96-128 ms",
         "late/early", "total ms"],
        [
            ["bounded top-k buffer", inc_early * 1e3, inc_late * 1e3,
             inc_late / inc_early, sum(inc_times) * 1e3],
            ["seed full re-sort", seed_early * 1e3, seed_late * 1e3,
             seed_late / seed_early, sum(seed_times) * 1e3],
        ],
    ))
    guard("topk_late_early_ratio", inc_late / inc_early, 2.0, op="<=")
    guard("topk_late_speedup_vs_seed", seed_late / inc_late, 3.0)
