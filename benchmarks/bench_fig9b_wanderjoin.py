"""Experiment E4 — Fig 9b + §8.4: Wake vs the WanderJoin-like baseline on
the modified (single-aggregate) Q3, Q7 and Q10 join queries.

Paper's claims to reproduce in shape:
* first estimates are comparable;
* Wake reaches <1% error faster (paper: 1.51×) and then converges to the
  exact answer, while WanderJoin's random-walk estimate plateaus around
  ~1% error and never becomes exact.
"""

import math

from repro.baselines import WanderJoinEngine
from repro.bench import metrics, run_wake
from repro.bench.report import banner, format_table
from repro.bench import workloads

QUERY_NAMES = ("q3", "q7", "q10")


def run_comparison(bench_data, bench_ctx):
    _catalog, tables = bench_data
    results = {}
    for name in QUERY_NAMES:
        wake_plan = getattr(workloads, f"modified_{name}_wake")(
            bench_ctx)
        exact_value = getattr(workloads, f"modified_{name}_exact")(
            tables.tables)
        wake_run = run_wake(bench_ctx, wake_plan)
        wake_series = [
            (s.wall_time,
             100.0 * abs(s.frame.column("revenue")[0] - exact_value)
             / abs(exact_value))
            for s in wake_run.edf.snapshots
            if s.frame.n_rows
        ]
        engine = WanderJoinEngine(tables.tables, seed=99)
        walk_query = getattr(workloads, f"modified_{name}_walk")()
        estimates = engine.run(walk_query, max_walks=30_000,
                               report_every=1_000)
        wj_series = [
            (e.wall_time,
             100.0 * abs(e.estimate - exact_value) / abs(exact_value))
            for e in estimates
        ]
        results[name] = (wake_series, wj_series)
    return results


def test_fig9b_vs_wanderjoin(bench_data, bench_ctx, benchmark, guard,
                             emit):
    results = benchmark.pedantic(
        lambda: run_comparison(bench_data, bench_ctx), rounds=1,
        iterations=1,
    )
    for name, (wake_series, wj_series) in results.items():
        emit(banner(f"Fig 9b — modified {name.upper()}: Wake vs "
                    f"WanderJoin-like"))
        emit("Wake (wall s, rel err %):")
        emit(format_table(["wall(s)", "err%"],
                          [[w, e] for w, e in wake_series]))
        emit("WanderJoin (every 5k walks):")
        emit(format_table(
            ["wall(s)", "err%"],
            [[w, e] for i, (w, e) in enumerate(wj_series)
             if (i + 1) % 5 == 0],
        ))
        wake_t1 = metrics.time_to_error(wake_series, 1.0)
        wj_t1 = metrics.time_to_error(wj_series, 1.0)
        emit(f"time to <1%: wake={wake_t1!r}s wanderjoin={wj_t1!r}s "
             f"(paper: Wake 1.51x faster; WJ plateaus ~1%)")

        assert wake_t1 is not None, f"{name}: Wake must reach <1%"
        # Wake converges to the exact answer; the sampling baseline
        # plateaus and must not.
        guard(f"{name}_wake_final_err", wake_series[-1][1], 1e-6,
              op="<")
        guard(f"{name}_wanderjoin_final_err", wj_series[-1][1], 1e-6,
              op=">")
        if wj_t1 is not None and not math.isnan(wj_t1):
            # Wake should be competitive with WanderJoin to <1%.
            guard(f"{name}_wake_vs_wanderjoin_t1_ratio",
                  wake_t1 / wj_t1, 2.0, op="<=")
