"""Experiment E14 — scan-layer pushdown (projection + zone-map pruning).

After PRs 1–3 made every operator incremental, the scan is the dominant
per-message cost: the seed ``ReadOperator`` decompressed **every column
of every partition** even for a Q6-style query touching 3 of 26 columns
behind a selective filter.  The pushdown layer
(:func:`repro.engine.planner.pushdown_plan`) fixes both axes:

* **projection** — only downstream-referenced columns are loaded, so
  per-message scan cost is O(selected columns);
* **zone-map pruning** — partitions the sargable filter conjuncts can
  never match are skipped outright (their progress still advances via an
  empty partial, so snapshot cadence and growth inference are untouched).

Measurements:

* **per-message scan+filter** — a read→filter pipeline driven message by
  message over a wide clustered table, pushdown on vs off.  Acceptance
  bar: **≥ 3× lower median latency** (the CI perf guard).
* **end-to-end** — full sync runs of the same query.
* **parity** — finals byte-identical with pushdown on vs off, alone and
  composed with ``parallelism=4`` sharding.
"""

import time

import numpy as np
import pytest

from repro import WakeContext
from repro.api.functions import F
from repro.bench.report import banner, format_table
from repro.dataframe import DataFrame, col
from repro.engine.ops import FilterOperator, ReadOperator
from repro.engine.planner import pushdown_plan
from repro.engine.graph import QueryGraph
from repro.storage import Catalog, write_table

N_PARTITIONS = 32
ROWS_PER_PARTITION = 4_096
N_VALUE_COLUMNS = 24
#: The filter keeps ship values inside [SEL_LO, SEL_HI) — two partitions
#: of the clustered table; zone maps prune the other 30.
N_ROWS = N_PARTITIONS * ROWS_PER_PARTITION
SEL_LO = 4 * ROWS_PER_PARTITION
SEL_HI = 6 * ROWS_PER_PARTITION


@pytest.fixture(scope="module")
def wide_catalog(tmp_path_factory):
    """A wide fact table clustered on the filter column ``ship``."""
    directory = tmp_path_factory.mktemp("pushdown_bench")
    rng = np.random.default_rng(7)
    data = {"ship": np.arange(N_ROWS, dtype=np.int64)}
    for i in range(N_VALUE_COLUMNS):
        data[f"f{i:02d}"] = rng.normal(100.0, 15.0, size=N_ROWS)
    data["tag"] = np.array([f"tag{i % 13:02d}" for i in range(N_ROWS)])
    frame = DataFrame(data)
    catalog = Catalog(root=str(directory))
    write_table(
        catalog, directory, "wide", frame,
        rows_per_partition=ROWS_PER_PARTITION,
        primary_key=["ship"], clustering_key=["ship"],
    )
    return catalog


def _predicate():
    return col("ship").between(SEL_LO, SEL_HI)


def _plan(ctx):
    filtered = ctx.table("wide").filter(_predicate())
    enriched = filtered.select(gain=col("f01") * col("f02"))
    return enriched.agg(F.sum("gain").alias("revenue"))


def _scan_filter_times(catalog, pushed: bool) -> tuple[list[float], int]:
    """Per-message latency of the scan→filter front of the pipeline.

    The *full* Q6-style plan is materialized and (when ``pushed``) run
    through the planner's pushdown pass, so the scan carries exactly the
    projection (3 referenced columns) and sargable conjuncts a real run
    would — then only its read→filter front is driven, message by
    message.  The baseline reads every column of every partition.
    """
    ctx = WakeContext(catalog)
    graph = QueryGraph()
    output = _plan(ctx).plan.materialize(graph, {})
    if pushed:
        pushdown_plan(graph, output)
    graph.resolve()
    (read_id,) = graph.source_ids()
    read = graph.node(read_id).operator
    assert isinstance(read, ReadOperator)
    if pushed:
        assert read.columns == ("ship", "f01", "f02")
        assert read.predicates
    flt = next(
        graph.node(nid).operator
        for nid in sorted(graph.nodes)
        if isinstance(graph.node(nid).operator, FilterOperator)
    )
    times: list[float] = []
    rows = 0
    stream = read.stream()
    while True:
        # One "message" of work = producing the partition (the scan:
        # decompress + materialize, or a zone-map skip) + filtering it.
        start = time.perf_counter()
        try:
            message = next(stream)
        except StopIteration:
            break
        out = flt.on_message(0, message)
        times.append(time.perf_counter() - start)
        rows += sum(m.frame.n_rows for m in out)
    return times, rows


def _run_wall_clock(catalog, pushdown: bool) -> tuple[float, DataFrame]:
    ctx = WakeContext(catalog, pushdown=pushdown)
    start = time.perf_counter()
    edf = ctx.run(_plan(ctx), capture_all=False)
    return time.perf_counter() - start, edf.get_final()


def assert_byte_identical(got, expected, label):
    assert tuple(got.column_names) == tuple(expected.column_names)
    for name in expected.column_names:
        assert (got.column(name).tobytes()
                == expected.column(name).tobytes()), (
            f"column {name!r} drifted under {label}"
        )


def test_per_message_scan_filter_speedup(wide_catalog, guard, emit):
    """The headline guard: ≥ 3× lower median per-message scan+filter
    latency on a selective query over a wide clustered table."""
    # Warm the page cache so both strategies read warm files.
    baseline_times, baseline_rows = _scan_filter_times(
        wide_catalog, pushed=False
    )
    baseline_times, baseline_rows = _scan_filter_times(
        wide_catalog, pushed=False
    )
    pushed_times, pushed_rows = _scan_filter_times(
        wide_catalog, pushed=True
    )
    assert pushed_rows == baseline_rows

    def stats(samples):
        arr = np.array(samples) * 1000.0
        return [float(np.percentile(arr, 50)),
                float(np.percentile(arr, 90)),
                float(arr.sum())]

    base_p50, base_p90, base_total = stats(baseline_times)
    push_p50, push_p90, push_total = stats(pushed_times)
    median_speedup = base_p50 / max(push_p50, 1e-9)
    total_speedup = base_total / max(push_total, 1e-9)

    emit(banner(
        f"E14 — per-message scan+filter ({N_PARTITIONS} partitions x "
        f"{ROWS_PER_PARTITION} rows, {N_VALUE_COLUMNS + 2} columns, "
        f"filter keeps 2 partitions)"
    ))
    emit(format_table(
        ["strategy", "p50 ms", "p90 ms", "total ms"],
        [
            ["full scan", base_p50, base_p90, base_total],
            ["pushdown (3 cols + prune)", push_p50, push_p90,
             push_total],
            ["speedup", median_speedup, base_p90 / max(push_p90, 1e-9),
             total_speedup],
        ],
    ))
    guard("per_message_median_speedup", median_speedup, 3.0)
    guard("scan_filter_total_speedup", total_speedup, 3.0)


def test_end_to_end_and_parity(wide_catalog, guard, emit):
    """Full-query wall clock + byte-identical finals, alone and sharded."""
    off_time, off_final = _run_wall_clock(wide_catalog, pushdown=False)
    on_time, on_final = _run_wall_clock(wide_catalog, pushdown=True)
    assert_byte_identical(on_final, off_final, "pushdown")

    ctx = WakeContext(wide_catalog)
    sharded = ctx.run(
        _plan(ctx), capture_all=False, parallelism=4
    ).get_final()
    assert_byte_identical(sharded, off_final, "pushdown + parallelism=4")

    emit(banner("E14 — end-to-end sync run (Q6-style over the wide table)"))
    emit(format_table(
        ["configuration", "wall s"],
        [
            ["pushdown off", off_time],
            ["pushdown on", on_time],
            ["speedup", off_time / max(on_time, 1e-9)],
        ],
    ))
    guard("end_to_end_speedup", off_time / max(on_time, 1e-9), 2.0)


def test_pruned_progress_matches_unpruned(wide_catalog, guard):
    """Snapshot progress sequences are identical under pruning — the
    growth-inference ``t`` never sees the skipped partitions."""
    on = WakeContext(wide_catalog, pushdown=True)
    off = WakeContext(wide_catalog, pushdown=False)
    seq_on = on.run(_plan(on))
    seq_off = off.run(_plan(off))
    assert len(seq_on) == len(seq_off)
    for a, b in zip(seq_on.snapshots, seq_off.snapshots):
        assert dict(a.progress.done) == dict(b.progress.done)
        assert a.t == b.t
        assert_byte_identical(a.frame, b.frame, "pruned snapshot")
    guard("snapshot_sequence_identical", 1.0, 1.0, op="==")
