"""Ablation — growth-based inference (§5.2) vs fixed scaling rules.

DESIGN.md calls out the cardinality growth model as the load-bearing
design choice of Wake's estimator stack.  The same aggregation runs under
three scaling strategies:

* ``fitted``  — the paper's monomial fit of w (growth-based inference);
* ``uniform`` — classic OLA scaling by 1/t (w pinned to 1), i.e. what a
  single-level ProgressiveDB-style system does;
* ``none``    — raw merged values (w pinned to 0).

Two workloads span the growth regimes of Fig 4:

* **A (base stream, w ≈ 1)** — ``orders.count(by=o_custkey)``: group
  cardinalities grow with the scan.  ``none`` under-projects everything;
  ``uniform`` and ``fitted`` are both right.
* **B (aggregate-over-aggregate, w ≈ 0)** — counting the rows of that
  aggregate's *output* (number of distinct customers).  The input
  snapshots stabilize early; ``uniform`` over-projects by 1/t (≈ 2× at
  half progress); ``none`` and ``fitted`` are right.

Only the fitted model is accurate in *both* regimes — exactly the
paper's argument for why Deep OLA needs growth inference rather than a
fixed scaling rule.
"""

import numpy as np

from repro import F, WakeContext
from repro.bench import run_wake
from repro.bench.report import banner, format_table
from repro.dataframe import AggSpec, group_aggregate

MODES = ("fitted", "uniform", "none")


def workload_a(ctx: WakeContext, mode: str):
    """Base-stream grouped count (linear growth regime)."""
    return ctx.table("orders").agg(
        F.count(None).alias("n_orders"), by=["o_custkey"],
        growth=mode,
    )


def workload_b(ctx: WakeContext, mode: str):
    """Aggregate over an aggregate (stable-cardinality regime)."""
    per_cust = ctx.table("orders").agg(
        F.count(None).alias("n_orders"), by=["o_custkey"]
    )
    return per_cust.agg(F.count(None).alias("n_customers"),
                        growth=mode)


def run_ablation(bench_data):
    catalog, tables = bench_data
    exact_a = group_aggregate(
        tables["orders"], ["o_custkey"],
        [AggSpec("count", None, "n_orders")],
    )
    n_customers = float(exact_a.n_rows)
    results = {}
    for mode in MODES:
        ctx = WakeContext(catalog)
        run_a = run_wake(ctx, workload_a(ctx, mode), exact=exact_a,
                         keys=["o_custkey"], values=["n_orders"])
        results[("A", mode)] = [(q.t, q.mape) for q in run_a.quality]
        edf_b = ctx.run(workload_b(ctx, mode))
        results[("B", mode)] = [
            (s.t,
             100.0 * abs(float(s.frame.column("n_customers")[0])
                         - n_customers) / n_customers)
            for s in edf_b.snapshots if s.frame.n_rows
        ]
    return results


def _mid_mean(series):
    mid = [m for t, m in series if 0.2 <= t <= 0.9 and not np.isnan(m)]
    return float(np.mean(mid)) if mid else float("nan")


def test_ablation_growth_model(bench_data, benchmark, guard, emit):
    results = benchmark.pedantic(lambda: run_ablation(bench_data),
                                 rounds=1, iterations=1)
    for label, title in (
        ("A", "workload A — orders.count(by=o_custkey), w ≈ 1"),
        ("B", "workload B — count of the aggregate's rows, w ≈ 0"),
    ):
        emit(banner(f"Ablation ({title}): MAPE% by scaling strategy"))
        series = {mode: results[(label, mode)] for mode in MODES}
        n = min(len(s) for s in series.values())
        emit(format_table(
            ["t", *MODES],
            [
                [series["fitted"][i][0]]
                + [series[m][i][1] for m in MODES]
                for i in range(n)
            ],
        ))
        emit("mid-stream mean MAPE: " + "  ".join(
            f"{m}={_mid_mean(series[m]):.1f}%" for m in MODES
        ))

    a = {m: _mid_mean(results[("A", m)]) for m in MODES}
    b = {m: _mid_mean(results[("B", m)]) for m in MODES}

    # Regime A: scaling is necessary — 'none' badly under-projects.
    guard("regime_a_fitted_vs_none_mape_ratio",
          a["fitted"] / a["none"], 0.8, op="<")
    # Regime B: blind 1/t scaling over-projects aggregate-over-aggregate.
    guard("regime_b_fitted_vs_uniform_mape_ratio",
          b["fitted"] / b["uniform"], 0.8, op="<")
    # Only the fitted model is good in both regimes.
    fitted_worst = max(a["fitted"], b["fitted"])
    uniform_worst = max(a["uniform"], b["uniform"])
    none_worst = max(a["none"], b["none"])
    assert fitted_worst < uniform_worst
    assert fitted_worst < none_worst
    # And everything still converges exactly (2C).
    final_mape_worst = max(series[-1][1] for series in results.values())
    guard("final_mape_worst", final_mape_worst, 1e-9, op="<")