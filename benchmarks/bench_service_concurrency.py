"""Experiment E14 — multi-query service: no starvation, near-serial
throughput.

Eight TPC-H queries run concurrently through the fair-share scheduler
in one process.  Two properties guard the service layer:

* **no starvation** — every query must produce its *first* snapshot
  within a bounded multiple of its solo first-snapshot latency.  With
  8 equal-priority queries the fair-share ideal is ~8x (each query gets
  every 8th partition-step); the guard allows scheduling overhead +
  build-phase skew on top, but catches the failure mode where one query
  sees no steps until others finish (which would show up as a ratio on
  the order of total-work / solo-first-snapshot, hundreds of x).
* **near-serial aggregate throughput** — time-slicing is bookkeeping,
  not work: total wall-clock for the concurrent batch must be within
  1/0.7 of running the same queries back-to-back (aggregate
  partition-step throughput >= 0.7x serial).

Both record into ``benchmarks/results/BENCH_summary.json`` via the
``guard`` fixture.
"""

import time

from repro import WakeContext
from repro.service import (
    FairShareScheduler,
    ScanShareManager,
    SessionState,
)
from repro.tpch.queries import QUERIES

from benchmarks.conftest import BENCH_OVERRIDES
from repro.bench.report import banner, format_table

#: A mixed batch: scans, selective filters, joins, group-bys.
QUERY_SET = (1, 3, 5, 6, 10, 12, 14, 19)

#: First-snapshot slowdown bound under 8-way sharing.  Ideal fair share
#: is len(QUERY_SET)x; the headroom absorbs per-step work imbalance
#: (join-heavy queries pay for neighbors' expensive steps), build-phase
#: skew, and timer noise on millisecond-scale solo latencies.
#: Starvation (no steps until other queries finish) shows up well above
#: this — strictly serial FIFO already exceeds it; the step-share guard
#: below is the tight, deterministic fairness check.
STARVATION_BOUND = 5.0 * len(QUERY_SET)

#: Deterministic companion bound: the number of *global* partition-steps
#: executed when a query's first snapshot appears, relative to the steps
#: the query needs on its own.  Free of timer noise; fair sharing gives
#: ~len(QUERY_SET)x while both bounds blow up under starvation.
STEP_SHARE_BOUND = 2.0 * len(QUERY_SET)

#: Aggregate throughput floor vs serial execution.
THROUGHPUT_FLOOR = 0.7

#: Wall-clock floor for ratio denominators (timer-noise guard).
MIN_SOLO_LATENCY = 1e-3

#: A *mixed* batch scans overlapping but not identical column sets, so
#: shared scans give a modest win at best — the guard is that routing
#: every read through one pool costs nothing (>= this x the unshared
#: batch's throughput; bench_scan_share.py guards the big win on
#: identical queries).
SHARED_SCAN_FLOOR = 0.9


def _executor(catalog, number, scan_share=None):
    ctx = WakeContext(catalog)
    plan = QUERIES[number].build_plan(
        ctx, **BENCH_OVERRIDES.get(number, {})
    )
    executor = ctx.executor_for(plan)
    if scan_share is not None:
        executor.scan_share = scan_share
    return executor


def _drive(scheduler, sessions):
    """Run a scheduler to idle, recording each session's first-snapshot
    latency (wall since drive start and global partition-steps executed)
    plus the total wall-clock."""
    first_snapshot = {}
    first_step = {}
    steps = 0
    started = time.perf_counter()
    while scheduler.run_once() is not None:
        steps += 1
        now = time.perf_counter()
        for number, session in sessions.items():
            if number not in first_snapshot and len(session.buffer):
                first_snapshot[number] = now - started
                first_step[number] = steps
    elapsed = time.perf_counter() - started
    return first_snapshot, first_step, elapsed


def test_service_concurrency(bench_data, emit, guard):
    catalog, _tables = bench_data

    # -- solo runs: per-query first-snapshot latency + serial total ----
    solo_first = {}
    solo_steps = {}
    solo_elapsed = {}
    for number in QUERY_SET:
        scheduler = FairShareScheduler()
        session = scheduler.submit(_executor(catalog, number))
        firsts, first_steps, elapsed = _drive(
            scheduler, {number: session}
        )
        assert session.state is SessionState.DONE
        solo_first[number] = firsts[number]
        solo_steps[number] = first_steps[number]
        solo_elapsed[number] = elapsed
    serial_total = sum(solo_elapsed.values())

    # -- concurrent batch: all 8 in one scheduler ----------------------
    scheduler = FairShareScheduler()
    sessions = {
        number: scheduler.submit(_executor(catalog, number),
                                 name=f"q{number:02d}")
        for number in QUERY_SET
    }
    concurrent_first, concurrent_steps, concurrent_total = _drive(
        scheduler, sessions
    )
    total_steps = sum(s.steps for s in sessions.values())
    for number, session in sessions.items():
        assert session.state is SessionState.DONE, f"q{number:02d}"
        assert number in concurrent_first, f"q{number:02d} starved"

    ratios = {
        number: (concurrent_first[number]
                 / max(solo_first[number], MIN_SOLO_LATENCY))
        for number in QUERY_SET
    }
    step_ratios = {
        number: concurrent_steps[number] / solo_steps[number]
        for number in QUERY_SET
    }
    worst = max(ratios.values())
    worst_steps = max(step_ratios.values())
    throughput_ratio = serial_total / max(concurrent_total, 1e-9)

    emit(banner("E14 — 8-query concurrency (fair-share scheduler)"))
    rows = [
        [f"q{number:02d}",
         f"{solo_first[number] * 1e3:.1f}",
         f"{concurrent_first[number] * 1e3:.1f}",
         f"{ratios[number]:.1f}x",
         f"{step_ratios[number]:.1f}x",
         sessions[number].steps]
        for number in QUERY_SET
    ]
    emit(format_table(
        ["query", "solo 1st snap (ms)", "shared 1st snap (ms)",
         "slowdown", "step share", "steps"],
        rows,
    ))
    emit(f"\nserial total      : {serial_total:.3f}s")
    emit(f"concurrent total  : {concurrent_total:.3f}s "
         f"({total_steps} partition-steps)")
    emit(f"throughput ratio  : {throughput_ratio:.2f}x "
         f"(floor {THROUGHPUT_FLOOR}x)")
    emit(f"worst 1st-snapshot: {worst:.1f}x wall "
         f"(bound {STARVATION_BOUND:.0f}x), {worst_steps:.1f}x steps "
         f"(bound {STEP_SHARE_BOUND:.0f}x)")

    guard("first_snapshot_worst_slowdown", worst, STARVATION_BOUND,
          op="<=")
    guard("first_snapshot_worst_step_share", worst_steps,
          STEP_SHARE_BOUND, op="<=")
    guard("aggregate_throughput_ratio", throughput_ratio,
          THROUGHPUT_FLOOR)


def test_service_concurrency_shared_scans(bench_data, emit, guard):
    """The same mixed batch with every read routed through one
    ScanShareManager: the pool's bookkeeping (and its wider
    column-union reads) must not cost throughput, and every query's
    result must still arrive."""
    catalog, _tables = bench_data

    def _batch(manager):
        scheduler = FairShareScheduler()
        sessions = {
            number: scheduler.submit(
                _executor(catalog, number, scan_share=manager),
                name=f"q{number:02d}",
            )
            for number in QUERY_SET
        }
        started = time.perf_counter()
        scheduler.run_until_idle()
        elapsed = time.perf_counter() - started
        for number, session in sessions.items():
            assert session.state is SessionState.DONE, f"q{number:02d}"
        return elapsed

    _batch(None)  # warm the page cache
    unshared = _batch(None)
    manager = ScanShareManager()
    shared = _batch(manager)
    stats = manager.stats()
    ratio = unshared / max(shared, 1e-9)

    emit(banner("E14b — mixed 8-query batch through one scan pool"))
    emit(f"unshared batch : {unshared * 1e3:.1f} ms")
    emit(f"shared batch   : {shared * 1e3:.1f} ms "
         f"({ratio:.2f}x; floor {SHARED_SCAN_FLOOR}x)")
    emit(f"pool           : {stats['physical_reads']} physical reads, "
         f"{stats['shared_hits']} hits, "
         f"{stats['lru_evictions']} LRU evictions")
    guard("shared_scan_pool_hits", stats["shared_hits"], 1)
    guard("shared_scan_mixed_batch_ratio", ratio, SHARED_SCAN_FLOOR)
