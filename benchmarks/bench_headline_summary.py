"""Experiment E10 — the paper's headline metrics (abstract / §8 bullets),
computed over this reproduction's substrate:

* median first-estimate speedup vs exact systems' final answers
  (paper: 4.93× vs the fastest exact engine);
* median slowdown of Wake's exact answer (paper: 1.3×);
* median relative error of the first estimate (paper: 2.70%);
* time to <1% error vs the best exact engine's final (paper: 3.17×
  faster on average);
* vs existing OLA systems to <1% error (paper: 1.92× faster median).
"""

from conftest import BENCH_OVERRIDES

from repro.baselines import ExactEngine, ProgressiveScan
from repro.bench import median_or_nan, metrics, run_wake
from repro.bench.report import banner, format_table
from repro.bench import workloads
from repro.bench.workloads import METRIC_COLUMNS
from repro.tpch.queries import QUERIES


def compute_headlines(bench_data, bench_ctx):
    catalog, tables = bench_data
    memory_engine = ExactEngine(tables=tables, mode="memory")
    scan_engine = ExactEngine(catalog=catalog, mode="scan")

    first_speedups, slowdowns, first_mapes, sub1_speedups = [], [], [], []
    for number in sorted(QUERIES):
        query = QUERIES[number]
        overrides = BENCH_OVERRIDES.get(number, {})
        keys, values = METRIC_COLUMNS[number]
        exact_mem = memory_engine.run(query, **overrides)
        exact_scan = scan_engine.run(query, **overrides)
        plan = query.build_plan(bench_ctx, **overrides)
        run = run_wake(bench_ctx, plan, exact=exact_mem.frame,
                       keys=keys, values=values)
        best_exact = min(exact_mem.wall_time, exact_scan.wall_time)
        first_speedups.append(
            metrics.ratio(exact_scan.wall_time, run.first_latency))
        slowdowns.append(
            metrics.ratio(run.final_latency, exact_mem.wall_time))
        first_mapes.append(run.first_quality.mape)
        t1 = run.time_to_error(1.0)
        if t1 is not None:
            sub1_speedups.append(metrics.ratio(best_exact, t1))

    # OLA comparison: time-to-<1% on the shared modified queries.
    ola_ratios = []
    for name, metric_cols in (("q1", workloads.MODIFIED_Q1_METRICS),
                              ("q6", workloads.MODIFIED_Q6_METRICS)):
        exact = getattr(workloads, f"modified_{name}_exact")(
            tables.tables)
        keys, values = metric_cols
        wake_run = run_wake(
            bench_ctx,
            getattr(workloads, f"modified_{name}_wake")(bench_ctx),
            exact=exact, keys=keys, values=values,
        )
        scan = ProgressiveScan(
            catalog.table("lineitem"),
            chunk_rows=max(500,
                           catalog.table("lineitem").total_tuples // 32),
            middleware_overhead=0.02,
        )
        estimates = scan.run(
            getattr(workloads, f"modified_{name}_progressive")())
        prog_series = [
            (e.wall_time, metrics.mape(e.frame, exact, keys, values))
            for e in estimates
        ]
        wake_t1 = wake_run.time_to_error(1.0)
        prog_t1 = metrics.time_to_error(prog_series, 1.0)
        if wake_t1 and prog_t1:
            ola_ratios.append(prog_t1 / wake_t1)

    return {
        "first_speedup": median_or_nan(first_speedups),
        "final_slowdown": median_or_nan(slowdowns),
        "first_mape": median_or_nan(first_mapes),
        "sub1_speedup": median_or_nan(sub1_speedups),
        "ola_speedup": median_or_nan(ola_ratios),
    }


def test_headline_summary(bench_data, bench_ctx, benchmark, guard,
                          emit):
    headlines = benchmark.pedantic(
        lambda: compute_headlines(bench_data, bench_ctx), rounds=1,
        iterations=1,
    )
    emit(banner("Headline metrics — this reproduction vs the paper"))
    emit(format_table(
        ["metric", "reproduction", "paper"],
        [
            ["median first-estimate speedup",
             f"{headlines['first_speedup']:.2f}x", "4.93x"],
            ["median final-answer slowdown",
             f"{headlines['final_slowdown']:.2f}x", "1.3x"],
            ["median first-estimate MAPE",
             f"{headlines['first_mape']:.2f}%", "2.70%"],
            ["median <1%-error speedup vs best exact",
             f"{headlines['sub1_speedup']:.2f}x", "3.17x (mean)"],
            ["median <1%-error speedup vs OLA",
             f"{headlines['ola_speedup']:.2f}x", "1.92x"],
        ],
    ))
    emit("\nNotes: absolute factors are scale-dependent (laptop SF vs "
         "the paper's 100 GB / 16 vCPU testbed); the qualitative "
         "relations — first estimates far earlier than exact finals, "
         "bounded final overhead, faster-than-OLA convergence — are the "
         "reproduced claims.  See EXPERIMENTS.md.")

    guard("headline_first_speedup", headlines["first_speedup"], 1.5,
          op=">")
    guard("headline_ola_speedup", headlines["ola_speedup"], 1.0,
          op=">")