"""Experiment E5 — Fig 10 + §8.5: confidence-interval convergence and
correctness on Q14 with shuffled input partitions.

Paper's claims to reproduce in shape:
* the 95% Chebyshev CI (k ≈ 4.5) contracts toward the estimate as more
  partitions arrive (Fig 10a);
* the relative CI range |ŷ − y| / (kσ) stays below 1 (the truth stays
  inside the interval) with P95 ≈ 0.4 early and falling — conservative
  but safe (Fig 10b).
"""

import numpy as np

from repro import CIConfig, WakeContext
from repro.baselines import ExactEngine
from repro.bench import relative_ci_range, run_wake
from repro.bench.report import banner, format_table
from repro.core.ci import sigma_column
from repro.tpch.queries import QUERIES

N_SHUFFLES = 12


def run_ci_experiment(bench_data):
    catalog, tables = bench_data
    exact = ExactEngine(tables=tables, mode="memory").run(
        QUERIES[14]).frame
    truth = float(exact.column("promo_revenue")[0])
    config = CIConfig(0.95)
    runs = []
    for seed in range(N_SHUFFLES):
        ctx = WakeContext(catalog, ci=config,
                          partition_shuffle_seed=seed)
        plan = QUERIES[14].build_plan(ctx)
        run = run_wake(ctx, plan)
        per_snapshot = []
        for snapshot in run.edf.snapshots:
            frame = snapshot.frame
            if frame.n_rows == 0:
                continue
            estimate = float(frame.column("promo_revenue")[0])
            sigma = float(
                frame.column(sigma_column("promo_revenue"))[0]
            )
            per_snapshot.append((estimate, sigma))
        runs.append(per_snapshot)
    return truth, config.k, runs


def test_fig10_ci_convergence_and_correctness(bench_data, benchmark,
                                              guard, emit):
    truth, k, runs = benchmark.pedantic(
        lambda: run_ci_experiment(bench_data), rounds=1, iterations=1
    )
    n_snapshots = min(len(r) for r in runs)
    rows = []
    p95_series = []
    width_series = []
    for index in range(n_snapshots):
        estimates = np.array([r[index][0] for r in runs])
        sigmas = np.array([r[index][1] for r in runs])
        rel = relative_ci_range(estimates, np.full_like(estimates, truth),
                                sigmas, k)
        rel = rel[np.isfinite(rel)]
        if len(rel) == 0:
            continue
        width = float(np.nanmean(k * sigmas))
        p95 = float(np.percentile(rel, 95))
        rows.append([
            index + 1, float(np.mean(estimates)), width,
            float(np.max(rel)), p95, float(np.mean(rel)),
        ])
        p95_series.append(p95)
        width_series.append(width)
    emit(banner("Fig 10 — Q14 95% CI over shuffled partitions "
                f"(k={k:.2f}, truth={truth:.4f}, {N_SHUFFLES} shuffles)"))
    emit(format_table(
        ["partition", "mean-est", "CI-halfwidth", "rel-max", "rel-P95",
         "rel-avg"],
        rows,
    ))

    # Fig 10a: the interval contracts as processing advances.
    assert width_series[-1] < width_series[0], (
        "CI half-width must shrink toward completion"
    )
    # Fig 10b: P95 of the relative CI range never crosses 1 — the 95%
    # CI contains the truth for >=95% of runs.
    guard("rel_ci_p95_worst", max(p95_series), 1.0, op="<=")
    # Conservative early on (Chebyshev), like the paper's ~0.4.
    guard("rel_ci_p95_first", p95_series[0], 1.0, op="<")