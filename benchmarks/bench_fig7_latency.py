"""Experiment E1 — Fig 7 + §8.2: first-estimate vs final latency across
all 22 TPC-H queries, Wake vs the exact engines.

Paper's claims to reproduce in *shape*:
* Wake's first estimate arrives a large factor before any exact engine's
  final answer (paper: 4.93× median vs the fastest exact system);
* Wake's exact answer costs a small constant factor over the in-memory
  exact engine (paper: ~1.3× median);
* subquery-heavy queries (Q2, Q17) have first ≈ final (negligible gains).
"""

from conftest import BENCH_OVERRIDES

from repro.baselines import ExactEngine
from repro.bench import median_or_nan, run_wake
from repro.bench.harness import LatencyRow
from repro.bench.report import banner, format_table
from repro.bench.workloads import METRIC_COLUMNS
from repro.tpch.queries import QUERIES


def run_all(bench_data, bench_ctx):
    catalog, tables = bench_data
    memory_engine = ExactEngine(tables=tables, mode="memory")
    scan_engine = ExactEngine(catalog=catalog, mode="scan")
    rows: list[LatencyRow] = []
    for number in sorted(QUERIES):
        query = QUERIES[number]
        overrides = BENCH_OVERRIDES.get(number, {})
        keys, values = METRIC_COLUMNS[number]
        exact_mem = memory_engine.run(query, **overrides)
        exact_scan = scan_engine.run(query, **overrides)
        plan = query.build_plan(bench_ctx, **overrides)
        run = run_wake(
            bench_ctx, plan, exact=exact_mem.frame, keys=keys,
            values=values, capture_all=False,
        )
        rows.append(
            LatencyRow(
                query=query.name,
                wake_first=run.first_latency,
                wake_final=run.final_latency,
                exact_memory=exact_mem.wall_time,
                exact_scan=exact_scan.wall_time,
                first_mape=run.first_quality.mape,
            )
        )
    return rows


def test_fig7_latency_all_queries(bench_data, bench_ctx, benchmark,
                                  guard, emit):
    rows = benchmark.pedantic(
        lambda: run_all(bench_data, bench_ctx), rounds=1, iterations=1
    )
    emit(banner("Fig 7 — query latency: Wake first/final vs exact "
                "engines (seconds)"))
    emit(format_table(
        ["query", "wake-first", "wake-final", "exact-mem",
         "exact-scan", "first-MAPE%", "first-speedup", "slowdown"],
        [
            [
                r.query, r.wake_first, r.wake_final, r.exact_memory,
                r.exact_scan, r.first_mape,
                r.first_speedup_vs_scan, r.final_slowdown_vs_memory,
            ]
            for r in rows
        ],
    ))
    first_speedups = [r.first_speedup_vs_scan for r in rows]
    slowdowns = [r.final_slowdown_vs_memory for r in rows]
    mapes = [r.first_mape for r in rows]
    emit("")
    emit(f"median first-estimate speedup vs exact-scan final : "
         f"{median_or_nan(first_speedups):.2f}x  (paper: 4.93x vs "
         f"fastest exact)")
    emit(f"median Wake-final slowdown vs exact-memory        : "
         f"{median_or_nan(slowdowns):.2f}x  (paper: 1.3x)")
    emit(f"median first-estimate MAPE                        : "
         f"{median_or_nan(mapes):.2f}%  (paper: 2.70%)")

    # Shape assertions (who wins, roughly by how much).  Note on scale:
    # the paper's 1.3x final-slowdown is measured at 100 GB where
    # per-snapshot engine overhead amortizes; at laptop SF the constant
    # Python overhead per refinement step dominates trivial queries, so
    # the bound here is loose (EXPERIMENTS.md quantifies this).
    # First estimates should land well before exact-scan finals.
    guard("first_speedup_median", median_or_nan(first_speedups), 1.5,
          op=">")
    # Wake-final should stay within a bounded factor of exact-memory.
    guard("final_slowdown_median", median_or_nan(slowdowns), 40.0,
          op="<")
    # Q2/Q17: subquery-blocked — first estimate close to final (§8.2)
    by_name = {r.query: r for r in rows}
    subquery_first_vs_final = min(
        by_name[name].wake_first / by_name[name].wake_final
        for name in ("q02", "q17")
    )
    guard("subquery_blocked_first_vs_final_min",
          subquery_first_vs_final, 0.3, op=">")
