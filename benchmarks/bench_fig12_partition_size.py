"""Experiment E7 — Fig 12 + §8.7: the impact of partition size.

Paper's claims to reproduce in shape:

* first-result latency grows with partition size (fewer, bigger chunks);
* for merge-heavy queries (many groups to re-merge: Q13, Q15, Q22),
  larger partitions reduce final latency materially;
* for merge-light queries (Q4, Q19, Q21), final latency is insensitive
  to partition size.
"""

import pytest

from conftest import BENCH_OVERRIDES

from repro import WakeContext
from repro.bench import median_or_nan, run_wake
from repro.bench.report import banner, format_table
from repro.bench.workloads import reload_with_partitions
from repro.tpch.queries import QUERIES

PARTITION_COUNTS = (4, 8, 16, 32)
MERGE_LIGHT = (4, 19, 21)
MERGE_HEAVY = (13, 15, 22)


@pytest.fixture(scope="module")
def sweep_catalogs(bench_data, tmp_path_factory):
    _catalog, tables = bench_data
    catalogs = {}
    for count in PARTITION_COUNTS:
        directory = tmp_path_factory.mktemp(f"sweep_{count}")
        catalogs[count] = reload_with_partitions(
            tables, directory, fact_partitions=count
        )
    return catalogs


def run_sweep(sweep_catalogs):
    results = {}
    for number in (*MERGE_LIGHT, *MERGE_HEAVY):
        query = QUERIES[number]
        overrides = BENCH_OVERRIDES.get(number, {})
        per_count = {}
        for count, catalog in sweep_catalogs.items():
            ctx = WakeContext(catalog)
            plan = query.build_plan(ctx, **overrides)
            run = run_wake(ctx, plan, capture_all=False)
            per_count[count] = (run.first_latency, run.final_latency)
        results[number] = per_count
    return results


def test_fig12_partition_size_sweep(sweep_catalogs, benchmark, guard,
                                    emit):
    results = benchmark.pedantic(lambda: run_sweep(sweep_catalogs),
                                 rounds=1, iterations=1)
    emit(banner("Fig 12 — partition-count sweep (final-latency slowdown "
                "vs per-query best; first latency in s)"))
    header = ["query", "kind"]
    for count in PARTITION_COUNTS:
        header += [f"first@{count}", f"final@{count}", f"slow@{count}"]
    rows = []
    for number, per_count in results.items():
        kind = "heavy" if number in MERGE_HEAVY else "light"
        best = min(final for _first, final in per_count.values())
        row = [QUERIES[number].name, kind]
        for count in PARTITION_COUNTS:
            first, final = per_count[count]
            row += [first, final, final / best]
        rows.append(row)
    emit(format_table(header, rows))

    # First-result latency grows as partitions get bigger (fewer of
    # them): compare the most-partitioned vs least-partitioned layouts.
    many, few = max(PARTITION_COUNTS), min(PARTITION_COUNTS)
    first_ratios = [
        results[n][few][0] / max(results[n][many][0], 1e-9)
        for n in results
    ]
    # Bigger partitions should delay the first estimate.
    guard("first_latency_median_ratio_big_vs_small",
          median_or_nan(first_ratios), 1.0, op=">")
    # Merge-heavy queries benefit from fewer merges (bigger partitions).
    heavy_gain = [
        results[n][many][1] / max(results[n][few][1], 1e-9)
        for n in MERGE_HEAVY
    ]
    light_gain = [
        results[n][many][1] / max(results[n][few][1], 1e-9)
        for n in MERGE_LIGHT
    ]
    # Merge-heavy queries should be at least as partition-sensitive as
    # merge-light ones.
    guard("heavy_vs_light_gain_ratio",
          median_or_nan(heavy_gain) / median_or_nan(light_gain),
          0.9, op=">")
    # Merge-heavy finals should clearly speed up with bigger partitions.
    guard("heavy_gain_median", median_or_nan(heavy_gain), 1.2, op=">")