"""Experiment E16 — telemetry overhead on the metered fast path.

The observability layer (metrics registry + tracing + scan/step
instruments) must be near-free: every seam pays one ``is None`` check
when telemetry is off, and pre-bound instruments (one attribute call +
a locked float add) when it is on — no label-dict allocation, no
registry lookup per message (enforced by the ``metric-hot-lookup``
lint rule).  This experiment measures it end to end: the same TPC-H
queries driven through the fair-share scheduler bare vs fully
instrumented (registry + tracer + scan metrics attached), interleaved
to cancel drift, medians compared.

Acceptance bar (CI perf guard): **<= 5 % median overhead**.

A second test asserts the stronger contract the overhead bound rides
on: snapshot *sequences* are byte-identical with telemetry on and off
(equality asserts — telemetry may never change result bytes).
"""

import time

import numpy as np

from repro import WakeContext
from repro.bench.report import banner, format_table
from repro.obs import MetricsRegistry, ServiceInstruments, Tracer
from repro.service import FairShareScheduler, SessionState
from repro.tpch.queries import QUERIES

QUERY_NUMBERS = (1, 6)
ROUNDS = 5


def _run_once(catalog, number, telemetry):
    ctx = WakeContext(catalog)
    if telemetry:
        registry = MetricsRegistry()
        instruments = ServiceInstruments(registry)
        tracer = Tracer(clock=registry.clock)
        trace = tracer.begin(f"q{number:02d}")
    else:
        instruments = None
        trace = None
    scheduler = FairShareScheduler(metrics=instruments)
    plan = QUERIES[number].build_plan(ctx)
    start = time.perf_counter()
    executor = ctx.executor_for(plan, trace=trace)
    if instruments is not None:
        executor.scan_metrics = instruments.scan
    session = scheduler.submit(executor, trace=trace)
    scheduler.run_until_idle()
    elapsed = time.perf_counter() - start
    assert session.state is SessionState.DONE
    if instruments is not None:
        # The pre-bound step counter agrees exactly with the session's
        # own step count — telemetry observed every step, missed none.
        assert instruments.scheduler.steps.value == session.steps
    return elapsed, session


def test_telemetry_overhead_under_5_percent(bench_data, guard, emit):
    catalog, _tables = bench_data
    for number in QUERY_NUMBERS:  # warm page cache + imports
        _run_once(catalog, number, False)
    plain: dict[int, list[float]] = {n: [] for n in QUERY_NUMBERS}
    metered: dict[int, list[float]] = {n: [] for n in QUERY_NUMBERS}
    for _ in range(ROUNDS):  # interleaved: drift hits both arms alike
        for number in QUERY_NUMBERS:
            plain[number].append(_run_once(catalog, number, False)[0])
            metered[number].append(_run_once(catalog, number, True)[0])

    rows = []
    base_total = obs_total = 0.0
    for number in QUERY_NUMBERS:
        base = float(np.median(plain[number]))
        with_obs = float(np.median(metered[number]))
        base_total += base
        obs_total += with_obs
        rows.append([f"q{number:02d}", base * 1000.0,
                     with_obs * 1000.0, with_obs / max(base, 1e-9)])
    # Guard the aggregate: per-query medians on ~20 ms runs carry a few
    # percent of scheduler-noise jitter; the sum across queries is the
    # stable signal a real regression would move.
    ratio = obs_total / max(base_total, 1e-9)
    rows.append(["total", base_total * 1000.0, obs_total * 1000.0,
                 ratio])

    emit(banner(
        f"E16 — telemetry overhead, full instrumentation ({ROUNDS} "
        f"rounds, median wall clock)"
    ))
    emit(format_table(
        ["query", "bare ms", "instrumented ms", "ratio"], rows
    ))
    guard("obs_overhead_ratio", ratio, 1.05, op="<=")


def test_telemetry_never_changes_result_bytes(bench_data, emit):
    """Snapshot sequences must be byte-identical with telemetry on and
    off — telemetry observes, it never participates."""
    catalog, _tables = bench_data
    for number in QUERY_NUMBERS:
        _, bare = _run_once(catalog, number, False)
        _, metered = _run_once(catalog, number, True)
        base = bare.executor.edf
        obs = metered.executor.edf
        assert len(base) == len(obs)
        for left, right in zip(base.snapshots, obs.snapshots):
            assert left.sequence == right.sequence
            assert left.t == right.t
            assert dict(left.progress.done) == dict(right.progress.done)
            assert tuple(left.frame.column_names) == \
                tuple(right.frame.column_names)
            for name in left.frame.column_names:
                assert (
                    left.frame.column(name).tobytes()
                    == right.frame.column(name).tobytes()
                )
    emit(banner(
        "E16 — telemetry on/off snapshot sequences byte-identical "
        f"(q{QUERY_NUMBERS[0]:02d}, q{QUERY_NUMBERS[1]:02d})"
    ))
