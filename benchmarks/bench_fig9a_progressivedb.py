"""Experiment E3 — Fig 9a + §8.4: Wake vs the ProgressiveDB-like baseline
on the single-table modified Q1 and Q6.

Paper's claims to reproduce in shape:
* the initial estimates of the two systems are close;
* Wake converges to <1% relative error faster (paper: 2.5×).
"""

from repro.baselines import ProgressiveScan
from repro.bench import metrics, run_wake
from repro.bench.report import banner, format_table
from repro.bench import workloads


def run_comparison(bench_data, bench_ctx):
    catalog, tables = bench_data
    results = {}
    for name in ("q1", "q6"):
        wake_plan = getattr(workloads, f"modified_{name}_wake")(
            bench_ctx)
        exact = getattr(workloads, f"modified_{name}_exact")(
            tables.tables)
        keys, values = (
            workloads.MODIFIED_Q1_METRICS if name == "q1"
            else workloads.MODIFIED_Q6_METRICS
        )
        wake_run = run_wake(bench_ctx, wake_plan, exact=exact,
                            keys=keys, values=values)
        # middleware_overhead is calibrated to the magnitude of one JDBC
        # round trip + progressive-view refresh of the real middleware
        # (~20 ms).  On grouped queries (mq1) Wake also wins statistically
        # via growth-based inference; on global sums (mq6) the overhead
        # difference is the differentiator — exactly as in the paper,
        # where ProgressiveDB rides on Postgres while Wake is embedded.
        scan = ProgressiveScan(
            catalog.table("lineitem"),
            chunk_rows=max(500, catalog.table("lineitem").total_tuples
                           // 32),
            middleware_overhead=0.02,
        )
        prog_query = getattr(workloads, f"modified_{name}_progressive")()
        estimates = scan.run(prog_query)
        prog_series = [
            (e.wall_time,
             metrics.mape(e.frame, exact, keys, values),
             metrics.recall(e.frame, exact, keys))
            for e in estimates
        ]
        results[name] = (wake_run, prog_series)
    return results


def test_fig9a_vs_progressivedb(bench_data, bench_ctx, benchmark, guard,
                                emit):
    results = benchmark.pedantic(
        lambda: run_comparison(bench_data, bench_ctx), rounds=1,
        iterations=1,
    )
    for name, (wake_run, prog_series) in results.items():
        emit(banner(f"Fig 9a — modified {name.upper()}: Wake vs "
                    f"ProgressiveDB-like"))
        emit("Wake:")
        emit(format_table(
            ["wall(s)", "MAPE%", "recall%"],
            [[q.wall_time, q.mape, q.recall] for q in wake_run.quality],
        ))
        emit("ProgressiveDB-like:")
        emit(format_table(
            ["wall(s)", "MAPE%", "recall%"],
            [[w, m, r] for w, m, r in prog_series],
        ))
        wake_t1 = wake_run.time_to_error(1.0)
        prog_t1 = metrics.time_to_error(
            [(w, m if r >= 100.0 else float("inf"))
             for w, m, r in prog_series],
            1.0,
        )
        emit(f"time to <1% error: wake={wake_t1!r}s "
             f"progressive={prog_t1!r}s "
             f"(paper: Wake 2.5x faster)")

        assert wake_t1 is not None, "Wake must reach <1% error"
        assert prog_t1 is not None, "baseline must eventually converge"
        if name == "q1":
            # Grouped query: growth-based inference wins statistically,
            # so the ordering must hold outright.
            assert wake_t1 < prog_t1, (
                "q1: Wake should reach <1% error before the middleware "
                "baseline"
            )
        else:
            # Global sum: both estimators are statistically identical —
            # the differentiator is middleware overhead, so allow timing
            # jitter up to a near-tie.
            guard(f"{name}_wake_vs_progressive_t1_ratio",
                  wake_t1 / prog_t1, 1.5, op="<")
