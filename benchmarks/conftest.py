"""Shared benchmark fixtures.

The bench dataset scale is controlled by ``REPRO_BENCH_SF`` (default
0.01 ≈ 60k lineitems) and ``REPRO_BENCH_PARTITIONS`` (default 16) so the
same harness scales from smoke runs to hour-long sweeps.

Every experiment prints the paper-style table through the ``emit``
fixture, which bypasses pytest's capture (so ``pytest benchmarks/
--benchmark-only 2>&1 | tee bench_output.txt`` records it) and also
persists per-experiment text under ``benchmarks/results/``.
"""

import os
from pathlib import Path

import pytest

from repro import WakeContext
from repro.bench.report import GuardLog
from repro.tpch import generate_and_load

BENCH_SF = float(os.environ.get("REPRO_BENCH_SF", "0.02"))
BENCH_PARTITIONS = int(os.environ.get("REPRO_BENCH_PARTITIONS", "16"))
RESULTS_DIR = Path(__file__).parent / "results"
SUMMARY_PATH = RESULTS_DIR / "BENCH_summary.json"


@pytest.fixture(scope="session")
def bench_data(tmp_path_factory):
    """(catalog, tables) for the benchmark scale factor.

    ``REPRO_TPCH_CACHE_DIR`` (set by CI) reuses the partitioned dataset
    across runs instead of regenerating dbgen output every time.
    """
    cache_root = os.environ.get("REPRO_TPCH_CACHE_DIR")
    if cache_root:
        from repro.tpch import load_or_generate

        return load_or_generate(
            cache_root,
            scale_factor=BENCH_SF,
            seed=42,
            fact_partitions=BENCH_PARTITIONS,
            dimension_partitions=2,
        )
    directory = tmp_path_factory.mktemp("tpch_bench")
    catalog, tables = generate_and_load(
        directory,
        scale_factor=BENCH_SF,
        seed=42,
        fact_partitions=BENCH_PARTITIONS,
        dimension_partitions=2,
    )
    return catalog, tables


@pytest.fixture
def bench_ctx(bench_data):
    catalog, _tables = bench_data
    return WakeContext(catalog)


@pytest.fixture
def guard(request):
    """Assert a perf-guard threshold *and* record it in the trajectory.

    ``guard("speedup_median", speedup, 3.0)`` asserts ``speedup >= 3.0``
    (``op`` picks the comparison) and appends the measurement to
    ``benchmarks/results/BENCH_summary.json`` — recorded whether or not
    the assertion holds, so a regression still leaves its trace in the
    uploaded artifact.
    """
    log = GuardLog(SUMMARY_PATH)

    def _guard(metric: str, value: float, threshold: float,
               op: str = ">=") -> None:
        passed = log.record(
            benchmark=request.node.name,
            metric=metric,
            value=float(value),
            threshold=float(threshold),
            op=op,
        )
        assert passed, (
            f"perf guard failed: {metric} = {value:.4g} is not {op} "
            f"{threshold:.4g}"
        )

    return _guard


@pytest.fixture
def emit(capsys, request):
    """Print experiment output past pytest capture + save to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{request.node.name}.txt"
    if path.exists():
        path.unlink()

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(text, flush=True)
        with open(path, "a") as handle:
            handle.write(text + "\n")

    return _emit


#: Parameter overrides keeping spec-shaped queries non-degenerate at
#: laptop scale factors (documented in DESIGN.md / EXPERIMENTS.md).
BENCH_OVERRIDES: dict[int, dict] = {
    11: {"fraction": 0.005},
    18: {"threshold": 200},
}
