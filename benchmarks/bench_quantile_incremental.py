"""Experiment E12 — incremental order statistics vs full-history re-group.

PR 1 left one O(total-consumed) read path: ``sample_quantiles`` re-ran
``group_codes`` + ``group_quantile`` over the entire concatenated value
buffer on every snapshot, so median/quantile queries got slower per
message as the stream progressed.  Two measurements guard the rework:

* **flat latency** — per-message ``consume_delta`` + quantile-read cost
  over 128 partials must not grow with stream position (late/early
  median ratio <= 2), unlike the seed-style re-group whose per-read cost
  tracks total consumed rows.
* **byte-identical finals** — the incremental merged-run path must
  produce *bitwise* the same answers as a from-scratch
  ``group_aggregate`` over the full history (TPC-H lineitem), i.e. the
  exact-mode rework is a pure performance change (footnote-3 semantics
  preserved).
"""

import time

import numpy as np
import pytest

from repro.core.state import GroupedAggregateState
from repro.dataframe import AggSpec, DataFrame, group_aggregate
from repro.dataframe.groupby import group_codes, group_quantile
from repro.dataframe.join import inner_join_indices, shared_codes
from repro.bench.report import banner, format_table

N_PARTS = 128
ROWS_PER_PART = 4_000
N_GROUPS = 256
SPEC = AggSpec("median", "v", "med")


@pytest.fixture(scope="module")
def quantile_parts():
    rng = np.random.default_rng(0)
    n_rows = N_PARTS * ROWS_PER_PART
    frame = DataFrame(
        {
            "k": rng.integers(0, N_GROUPS, size=n_rows).astype(np.int64),
            "v": rng.normal(100.0, 25.0, size=n_rows),
        }
    )
    return [
        frame.slice(i * ROWS_PER_PART, (i + 1) * ROWS_PER_PART)
        for i in range(N_PARTS)
    ]


class SeedStyleQuantileReader:
    """The seed's read path: buffer raw parts, re-group + re-sort the
    entire history and join back on every snapshot read."""

    def __init__(self):
        self.state = GroupedAggregateState(by=("k",), specs=(SPEC,))
        self.parts: list[DataFrame] = []
        self._buffer: DataFrame | None = None

    def consume(self, part: DataFrame) -> None:
        self.state.consume_delta(part)
        self.parts.append(part.select(["k", "v"]))
        self._buffer = None

    def read(self) -> np.ndarray:
        if self._buffer is None:
            self._buffer = DataFrame.concat(self.parts)
            self.parts = [self._buffer]
        buffer = self._buffer
        state = self.state.state_frame()
        codes, keys, n_groups = group_codes(buffer, ["k"])
        quantiles = group_quantile(
            codes, n_groups, buffer.column("v"), 0.5
        )
        state_codes, key_codes = shared_codes(
            [state.column("k")], [keys.column("k")]
        )
        li, ri = inner_join_indices(state_codes, key_codes)
        out = np.full(state.n_rows, np.nan)
        out[li] = quantiles[ri]
        return out


def run_incremental(parts):
    state = GroupedAggregateState(by=("k",), specs=(SPEC,))
    times, answer = [], None
    for part in parts:
        start = time.perf_counter()
        state.consume_delta(part)
        answer = state.sample_quantiles(SPEC)
        times.append(time.perf_counter() - start)
    return times, answer


def run_seed_style(parts):
    reader = SeedStyleQuantileReader()
    times, answer = [], None
    for part in parts:
        start = time.perf_counter()
        reader.consume(part)
        answer = reader.read()
        times.append(time.perf_counter() - start)
    return times, answer


def window_medians(times):
    q = len(times) // 4
    early = float(np.median(np.array(times[q:2 * q])))
    late = float(np.median(np.array(times[-q:])))
    return early, late


def test_quantile_latency_flat(quantile_parts, benchmark, emit, guard):
    """Per-message consume+read latency must not grow with history."""
    inc_times, inc_answer = benchmark.pedantic(
        run_incremental, args=(quantile_parts,), rounds=3, iterations=1
    )
    seed_times, seed_answer = run_seed_style(quantile_parts)
    np.testing.assert_array_equal(inc_answer, seed_answer)

    inc_early, inc_late = window_medians(inc_times)
    seed_early, seed_late = window_medians(seed_times)
    emit(banner(
        f"E12 — median-by-key consume+read per message "
        f"({N_PARTS} partials x {ROWS_PER_PART} rows, {N_GROUPS} groups)"
    ))
    emit(format_table(
        ["strategy", "partials 32-64 ms", "partials 96-128 ms",
         "late/early", "total ms"],
        [
            ["incremental merged runs", inc_early * 1e3, inc_late * 1e3,
             inc_late / inc_early, sum(inc_times) * 1e3],
            ["seed re-group history", seed_early * 1e3, seed_late * 1e3,
             seed_late / seed_early, sum(seed_times) * 1e3],
        ],
    ))
    emit(f"late-window speedup vs seed path: "
         f"{seed_late / inc_late:.1f}x")
    guard("quantile_late_early_ratio", inc_late / inc_early, 2.0,
          op="<=")
    guard("quantile_late_speedup_vs_seed", seed_late / inc_late, 3.0)


def test_sketch_mode_bounds_memory(quantile_parts, guard, emit):
    """Opt-in sketch mode: bounded state, small quantile error."""
    exact = GroupedAggregateState(by=("k",), specs=(SPEC,))
    sketch = GroupedAggregateState(
        by=("k",), specs=(SPEC,), quantile_mode="sketch",
        sketch_size=256,
    )
    for part in quantile_parts:
        exact.consume_delta(part)
        sketch.consume_delta(part)
    e = exact.sample_quantiles(SPEC)
    s = sketch.sample_quantiles(SPEC)
    err = float(np.max(np.abs(e - s)))
    exact_bytes = exact._orderstats[SPEC.alias].nbytes()
    sketch_bytes = sketch._orderstats[SPEC.alias].nbytes()
    emit(banner("E12 — sketch mode memory bound"))
    emit(format_table(
        ["mode", "state bytes", "max |err| (values sigma=25)"],
        [["exact multiset", exact_bytes, 0.0],
         ["reservoir sketch (256)", sketch_bytes, err]],
    ))
    # reservoir matrix + its sorted read cache, vs the full multiset
    guard("sketch_vs_exact_bytes_ratio", sketch_bytes / exact_bytes,
          1.0 / 3.0, op="<")
    # ~se of a 256-sample median at sigma=25
    guard("sketch_quantile_abs_err", err, 10.0, op="<")


def test_tpch_quantile_finals_byte_identical(bench_ctx, bench_data, emit):
    """Engine finals through the incremental path must be *bitwise*
    equal to a one-shot group_aggregate over the full table."""
    _catalog, tables = bench_data
    lineitem = tables["lineitem"]
    specs = [
        AggSpec("median", "l_extendedprice", "med_price"),
        AggSpec("quantile", "l_extendedprice", "p90_price", param=0.9),
        AggSpec("quantile", "l_quantity", "p10_qty", param=0.1),
    ]
    plan = bench_ctx.table("lineitem").agg(
        *[_as_expr(s) for s in specs], by=["l_returnflag"],
    )
    final = plan.final()
    expected = group_aggregate(lineitem, ["l_returnflag"], specs)
    assert final.column("l_returnflag").tolist() == (
        expected.column("l_returnflag").tolist()
    )
    mismatches = [
        spec.alias
        for spec in specs
        if final.column(spec.alias).tobytes()
        != expected.column(spec.alias).tobytes()
    ]
    emit(banner("E12 — TPC-H lineitem quantile finals (byte comparison)"))
    emit(format_table(
        ["column", "byte-identical"],
        [[s.alias, s.alias not in mismatches] for s in specs],
    ))
    assert not mismatches, f"finals drifted: {mismatches}"


def _as_expr(spec: AggSpec):
    from repro.api.functions import AggExpr

    return AggExpr(spec.agg, spec.column, spec.alias, param=spec.param)
