"""Experiment E15 — shared scans + the result cache.

Two guards for the multi-query scan layer:

* **shared-scan speedup** — 8 identical submissions of a scan-dominated
  query (a full-schema pass over lineitem) through one
  :class:`ScanShareManager` must finish ≥3x faster in aggregate than
  the same batch with sharing off: with sharing, the batch pays ~1
  physical decompress per partition instead of 8 (lazy subscription
  costs a few cold-start reads).  TPC-H q06 (projected scan) and q01
  (compute-bound aggregation) ride along under a no-regression floor —
  sharing cannot speed up work that isn't reads, but it must never
  slow anything down.
* **attach latency** — with the result cache on, a duplicate submit
  attaches to the finished primary by replaying buffered snapshot
  references: O(prefix) pointer appends + one plan build/hash, never a
  re-execution.  The guard holds the attach to single-digit
  milliseconds (generous 50 ms bound for CI noise) and to a large
  multiple cheaper than the primary's execution.

Wall-clocks are best-of-``REPEATS`` per side (standard bench practice:
the minimum is the least-noise estimate of the true cost).  Both tests
record into ``benchmarks/results/BENCH_summary.json`` via the ``guard``
fixture.
"""

import time

from repro import ExecutionOptions, WakeContext
from repro.service import (
    FairShareScheduler,
    QueryService,
    ScanShareManager,
    SessionState,
)
from repro.tpch.queries import QUERIES

from benchmarks.conftest import BENCH_OVERRIDES
from repro.bench.report import banner, format_table

#: Copies of the query per batch — the fan-out width.
BATCH_WIDTH = 8

#: Best-of-N wall-clock measurements per batch configuration.
REPEATS = 3

#: Aggregate wall-clock speedup floor for the scan-dominated batch
#: (ideal is ~BATCH_WIDTH on the read portion; per-session dispatch,
#: snapshotting, and the lazy-subscription cold reads eat the rest;
#: measured ~3.6-4.0x at the default bench scale).
SCAN_SPEEDUP_FLOOR = 3.0

#: The projected / compute-bound companions only have to not regress.
NO_REGRESSION_FLOOR = 1.0

#: Attach must be O(ms): bound generous enough for CI timer noise yet
#: orders of magnitude below any re-execution.
ATTACH_LATENCY_BOUND_S = 0.050

#: ... and at least this many times cheaper than executing the plan.
ATTACH_SPEEDUP_FLOOR = 5.0


def _full_scan_plan(ctx):
    """A scan-dominated query: pushdown off forces every partition read
    to decompress the full lineitem schema, while the aggregate itself
    is one running sum."""
    return ctx.table("lineitem").sum("l_quantity")


def _run_batch(catalog, build, share, options=None):
    """Wall-clock for BATCH_WIDTH identical submissions driven to
    completion through one scheduler; returns (seconds, pool stats)."""
    scheduler = FairShareScheduler()
    manager = ScanShareManager() if share else None
    sessions = []
    for _ in range(BATCH_WIDTH):
        ctx = WakeContext(catalog)
        executor = ctx.executor_for(build(ctx), options=options)
        if manager is not None:
            executor.scan_share = manager
        sessions.append(scheduler.submit(executor))
    started = time.perf_counter()
    scheduler.run_until_idle()
    elapsed = time.perf_counter() - started
    assert all(s.state is SessionState.DONE for s in sessions)
    return elapsed, (dict(manager.stats()) if manager else None)


def _best_of(catalog, build, share, options=None):
    best, stats = None, None
    for _ in range(REPEATS):
        elapsed, run_stats = _run_batch(catalog, build, share,
                                        options=options)
        if best is None or elapsed < best:
            best, stats = elapsed, run_stats
    return best, stats


def test_scan_share_speedup(bench_data, emit, guard):
    catalog, _tables = bench_data
    no_pushdown = ExecutionOptions(pushdown=False)

    def tpch(number):
        def build(ctx):
            return QUERIES[number].build_plan(
                ctx, **BENCH_OVERRIDES.get(number, {})
            )
        return build

    workloads = [
        ("full scan", _full_scan_plan, no_pushdown,
         SCAN_SPEEDUP_FLOOR),
        ("projected scan (q06)", tpch(6), None, NO_REGRESSION_FLOOR),
        ("compute-bound (q01)", tpch(1), None, NO_REGRESSION_FLOOR),
    ]
    emit(banner(
        f"E15 — shared scans: {BATCH_WIDTH} identical queries, "
        f"one pool"
    ))
    rows, measured = [], []
    for label, build, options, floor in workloads:
        _run_batch(catalog, build, share=False,
                   options=options)  # warm the page cache
        off, _ = _best_of(catalog, build, share=False, options=options)
        on, stats = _best_of(catalog, build, share=True,
                             options=options)
        ratio = off / max(on, 1e-9)
        measured.append((label, ratio, floor))
        rows.append([
            label, f"{off * 1e3:.1f}", f"{on * 1e3:.1f}",
            f"{ratio:.2f}x", f"{floor}x",
            stats["physical_reads"], stats["shared_hits"],
        ])
    emit(format_table(
        ["batch", "share off (ms)", "share on (ms)", "speedup",
         "floor", "physical reads", "pool hits"],
        rows,
    ))
    for label, ratio, floor in measured:
        metric = "scan_share_speedup_" + \
            label.split("(")[0].strip().replace(" ", "_")
        guard(metric, ratio, floor)


def test_attach_latency(bench_data, emit, guard):
    catalog, _tables = bench_data
    ctx = WakeContext(
        catalog,
        options=ExecutionOptions(scan_share=True, result_cache=True),
    )
    service = QueryService(ctx)

    started = time.perf_counter()
    primary = service.submit("q01")
    while service.scheduler.run_once() is not None:
        pass
    execute_s = time.perf_counter() - started
    assert primary.state is SessionState.DONE

    started = time.perf_counter()
    attached = service.submit("q01")
    attach_s = time.perf_counter() - started
    assert attached.status()["cache_hit"]
    assert attached.state is SessionState.DONE

    speedup = execute_s / max(attach_s, 1e-9)
    emit(banner("E15 — result-cache attach latency"))
    emit(format_table(
        ["path", "wall (ms)", "snapshots"],
        [["execute (primary)", f"{execute_s * 1e3:.2f}",
          len(primary.buffer)],
         ["attach (replay)", f"{attach_s * 1e3:.3f}",
          len(attached.buffer)]],
    ))
    emit(f"\nattach is {speedup:.0f}x cheaper "
         f"(bound: <= {ATTACH_LATENCY_BOUND_S * 1e3:.0f} ms, "
         f">= {ATTACH_SPEEDUP_FLOOR}x)")
    guard("attach_latency_s", attach_s, ATTACH_LATENCY_BOUND_S,
          op="<=")
    guard("attach_speedup", speedup, ATTACH_SPEEDUP_FLOOR)
