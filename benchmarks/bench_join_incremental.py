"""Experiment E11 — incremental join/aggregate state vs recompute.

The streamed-partition hot paths this repo's operators sit on
(arXiv:2303.04103 §7.2): per-message work must track *partition* size,
not total data consumed.  Three measurements:

* **probe stream** — a 64+-partition probe stream joined against one
  build side, comparing the prebuilt :class:`JoinIndex` probe path
  against the seed's one-shot ``hash_join`` (which re-factorizes and
  re-sorts the entire build side on every message).  Reports per-message
  latency percentiles; the acceptance bar is ≥ 5× lower median.
* **aggregate growth** — ``GroupedAggregateState.consume_delta`` cost as
  partials accumulate: the slot-based merge must stay flat (no scaling
  with previously-consumed partials), unlike concat + ``np.unique`` over
  all groups per message.
* **sink snapshot** — the executor-level effect: end-to-end per-snapshot
  cost with the part-concat cache.
"""

import time

import numpy as np
import pytest

from repro.core.state import GroupedAggregateState
from repro.dataframe import AggSpec, DataFrame, JoinIndex, hash_join
from repro.bench.report import banner, format_table

N_PROBE = 256_000
N_PARTITIONS = 64
N_BUILD = 100_000


def percentiles(samples: list[float]) -> tuple[float, float, float]:
    arr = np.array(samples) * 1000.0  # ms
    return (float(np.percentile(arr, 50)), float(np.percentile(arr, 90)),
            float(np.percentile(arr, 99)))


@pytest.fixture(scope="module")
def probe_parts():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, N_BUILD * 2, size=N_PROBE).astype(np.int64)
    vals = rng.normal(100.0, 15.0, size=N_PROBE)
    frame = DataFrame({"k": keys, "v": vals})
    size = N_PROBE // N_PARTITIONS
    return [frame.slice(i * size, (i + 1) * size)
            for i in range(N_PARTITIONS)]


@pytest.fixture(scope="module")
def build():
    rng = np.random.default_rng(1)
    return DataFrame(
        {
            "k": rng.permutation(N_BUILD * 2)[:N_BUILD].astype(np.int64),
            "name": np.array([f"g{i}" for i in range(N_BUILD)]),
        }
    )


def test_probe_stream_vs_one_shot(probe_parts, build, benchmark, emit,
                                  guard):
    """Per-message probe latency: JoinIndex vs seed one-shot hash_join."""
    def run_indexed():
        index = JoinIndex(build, ["k"])
        times, rows = [], 0
        for part in probe_parts:
            start = time.perf_counter()
            out = index.probe_inner(part, ["k"])
            times.append(time.perf_counter() - start)
            rows += out.n_rows
        return times, rows

    def run_one_shot():
        times, rows = [], 0
        for part in probe_parts:
            start = time.perf_counter()
            out = hash_join(part, build, ["k"], ["k"])
            times.append(time.perf_counter() - start)
            rows += out.n_rows
        return times, rows

    indexed_times, indexed_rows = benchmark.pedantic(
        run_indexed, rounds=3, iterations=1
    )
    one_shot_times, one_shot_rows = run_one_shot()
    assert indexed_rows == one_shot_rows

    rows = []
    for label, times in (("JoinIndex probe", indexed_times),
                         ("one-shot hash_join", one_shot_times)):
        p50, p90, p99 = percentiles(times)
        rows.append([label, len(times), p50, p90, p99,
                     sum(times) * 1000.0])
    emit(banner(
        f"E11 — streamed probe ({N_PARTITIONS} partitions x "
        f"{N_PROBE // N_PARTITIONS} rows vs {N_BUILD}-row build side)"
    ))
    emit(format_table(
        ["strategy", "messages", "p50 ms", "p90 ms", "p99 ms",
         "total ms"],
        rows,
    ))
    speedup = (np.median(np.array(one_shot_times))
               / np.median(np.array(indexed_times)))
    emit(f"median per-message speedup: {speedup:.1f}x "
         f"(acceptance bar: >= 5x)")
    guard("probe_median_speedup", speedup, 5.0)


def test_aggregate_state_growth_flat(benchmark, emit, guard):
    """consume_delta latency must not grow with partials consumed."""
    rng = np.random.default_rng(2)
    n_rows, n_parts, n_groups = 512_000, 128, 20_000
    frame = DataFrame(
        {
            "k": rng.integers(0, n_groups, size=n_rows).astype(np.int64),
            "v": rng.normal(50.0, 10.0, size=n_rows),
        }
    )
    size = n_rows // n_parts
    parts = [frame.slice(i * size, (i + 1) * size) for i in range(n_parts)]

    def consume_all():
        state = GroupedAggregateState(
            by=("k",), specs=(AggSpec("sum", "v", "s"),
                              AggSpec("count", None, "n"))
        )
        times = []
        for part in parts:
            start = time.perf_counter()
            state.consume_delta(part)
            times.append(time.perf_counter() - start)
        assert state.n_groups == n_groups
        return times

    times = benchmark.pedantic(consume_all, rounds=3, iterations=1)
    # After the dictionary warms up (~first quarter), per-message cost
    # must be flat: the last quarter no slower than 2x the second quarter.
    q = len(times) // 4
    early = float(np.median(np.array(times[q:2 * q])))
    late = float(np.median(np.array(times[-q:])))
    emit(banner("E11 — aggregate consume_delta growth "
                f"({n_parts} partials, {n_groups} groups)"))
    emit(format_table(
        ["window", "median ms"],
        [["partials 32-64", early * 1000.0],
         ["partials 96-128", late * 1000.0],
         ["late/early ratio", late / early]],
    ))
    guard("consume_delta_late_early_ratio", late / early, 2.0, op="<=")
