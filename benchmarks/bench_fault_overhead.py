"""Experiment E15 — fault-tolerance overhead on the no-fault fast path.

The retry layer (PR 6) must be effectively free when nothing fails:
per step it adds one ``attempt = 0`` reset, two flag writes in the
executor, and a peek at an (empty) cooling heap — no extra reads, no
allocation on the hot path.  This experiment measures it end to end:
the same TPC-H queries driven through the fair-share scheduler with
retries disabled vs a full :class:`RetryPolicy` attached (and zero
injected faults), interleaved to cancel drift, medians compared.

Acceptance bar (CI perf guard): **< 5 % median overhead**.

A second, informational table reports the *recovery* cost under real
injected faults (retry + deterministic backoff) — that path is allowed
to cost time; see ROADMAP performance notes for the cost model.
"""

import time

import numpy as np

from repro import WakeContext
from repro.bench.report import banner, format_table
from repro.service import FairShareScheduler, RetryPolicy, SessionState
from repro.testing import FaultInjector
from repro.tpch.queries import QUERIES

QUERY_NUMBERS = (1, 6)
ROUNDS = 5

#: Production-shaped policy; backoff values never fire in the
#: no-fault measurement.
POLICY = RetryPolicy(max_attempts=3, backoff_base=0.05,
                     backoff_max=1.0)


def _run_once(catalog, number, retry):
    ctx = WakeContext(catalog)
    scheduler = FairShareScheduler(retry=retry)
    plan = QUERIES[number].build_plan(ctx)
    start = time.perf_counter()
    session = scheduler.submit(ctx.executor_for(plan))
    scheduler.run_until_idle()
    elapsed = time.perf_counter() - start
    assert session.state is SessionState.DONE
    return elapsed


def test_no_fault_overhead_under_5_percent(bench_data, guard, emit):
    catalog, _tables = bench_data
    for number in QUERY_NUMBERS:  # warm page cache + imports
        _run_once(catalog, number, None)
    plain: dict[int, list[float]] = {n: [] for n in QUERY_NUMBERS}
    guarded: dict[int, list[float]] = {n: [] for n in QUERY_NUMBERS}
    for _ in range(ROUNDS):  # interleaved: drift hits both arms alike
        for number in QUERY_NUMBERS:
            plain[number].append(_run_once(catalog, number, None))
            guarded[number].append(_run_once(catalog, number, POLICY))

    rows = []
    base_total = retry_total = 0.0
    for number in QUERY_NUMBERS:
        base = float(np.median(plain[number]))
        with_retry = float(np.median(guarded[number]))
        base_total += base
        retry_total += with_retry
        rows.append([f"q{number:02d}", base * 1000.0,
                     with_retry * 1000.0, with_retry / max(base, 1e-9)])
    # Guard the aggregate: per-query medians on ~20 ms runs carry a few
    # percent of scheduler-noise jitter; the sum across queries is the
    # stable signal a real regression would move.
    ratio = retry_total / max(base_total, 1e-9)
    rows.append(["total", base_total * 1000.0, retry_total * 1000.0,
                 ratio])

    emit(banner(
        f"E15 — retry-layer overhead, zero faults ({ROUNDS} rounds, "
        f"median wall clock)"
    ))
    emit(format_table(
        ["query", "no retry ms", "retry attached ms", "ratio"], rows
    ))
    guard("fault_overhead_ratio", ratio, 1.05, op="<=")


def test_recovery_cost_is_bounded(bench_data, guard, emit):
    """Informational: recovery under 4 transient faults costs the
    backoff it promises and nothing more (generous 3x bound — this is
    a sanity ceiling, not a tight guard)."""
    catalog, _tables = bench_data
    number = 6
    _run_once(catalog, number, None)  # warm
    base = _run_once(catalog, number, None)
    policy = RetryPolicy(max_attempts=3, backoff_base=0.005,
                         backoff_max=0.01)
    injector = FaultInjector()
    for index in range(4):
        injector.plan_fault("lineitem", index, times=1)
    ctx = WakeContext(injector.wrap_catalog(catalog))
    scheduler = FairShareScheduler(retry=policy)
    plan = QUERIES[number].build_plan(ctx)
    start = time.perf_counter()
    session = scheduler.submit(ctx.executor_for(plan))
    scheduler.run_until_idle()
    faulted = time.perf_counter() - start
    assert session.state is SessionState.DONE
    assert session.retries_used == 4
    backoff_paid = 4 * policy.backoff(1)

    emit(banner("E15 — recovery cost (4 transient faults, q06)"))
    emit(format_table(
        ["run", "wall ms"],
        [
            ["fault free", base * 1000.0],
            ["4 faults + backoff", faulted * 1000.0],
            ["promised backoff floor", backoff_paid * 1000.0],
        ],
    ))
    guard("recovery_overhead_ratio",
          faulted / max(base + backoff_paid, 1e-9), 3.0, op="<=")
