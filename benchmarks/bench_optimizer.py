"""Experiment E15 — plan-rewrite engine cost and payoff.

The rule engine runs on every ``submit``, so it must be effectively free
next to execution, and the new logical rules must earn their keep where
their shapes occur.  Two guards:

* **planning latency** — materialize + full rule stack over all 22
  TPC-H plans; every plan must optimize in **< 5 ms** (best of three,
  the CI perf guard).  Rewriting is O(nodes × rules) per pass and TPC-H
  plans are tens of nodes, so there is plenty of headroom.
* **rewrite payoff** — a query with two separately-built (but
  identical) expensive filter→aggregate chains over one shared scan,
  with the costly string conjuncts written *before* the cheap sargable
  one.  Common-subplan elimination collapses the duplicated chain and
  combine-filters re-ranks the conjuncts; together they must deliver a
  **≥ 1.5×** end-to-end speedup over a context with only the logical
  rules disabled (scan pushdown stays on for both sides, so the guard
  isolates exactly what this PR's rules buy).
"""

import time

from conftest import BENCH_OVERRIDES

from repro import WakeContext, col
from repro.api.functions import F
from repro.bench.report import banner, format_table
from repro.engine.graph import QueryGraph
from repro.engine.optimizer import LOGICAL_RULE_NAMES, build_optimizer
from repro.tpch.queries import QUERIES

#: Planning budget per TPC-H plan (milliseconds).
PLANNING_BUDGET_MS = 5.0
REPEATS = 3


def test_planning_latency_under_budget(bench_data, guard, emit):
    catalog, _tables = bench_data
    rows = []
    worst = 0.0
    for number in sorted(QUERIES):
        ctx = WakeContext(catalog)
        frame = QUERIES[number].build_plan(
            ctx, **BENCH_OVERRIDES.get(number, {})
        )
        best_ms = float("inf")
        n_nodes = rewrites = 0
        for _ in range(REPEATS):
            graph = QueryGraph()
            output = frame.plan.materialize(graph, {})
            optimizer = build_optimizer(parallelism=4)
            start = time.perf_counter()
            graph, output, trace = optimizer.optimize(graph, output)
            best_ms = min(best_ms,
                          (time.perf_counter() - start) * 1000.0)
            n_nodes = len(graph.nodes)
            rewrites = trace.total_rewrites
        worst = max(worst, best_ms)
        rows.append([f"q{number}", n_nodes, rewrites, best_ms])
    emit(banner(
        "E15 — optimizer planning latency (22 TPC-H plans, "
        f"parallelism=4, best of {REPEATS})"
    ))
    emit(format_table(
        ["query", "nodes (opt)", "rewrites", "plan ms"], rows,
    ))
    guard("planning_ms_worst_query", worst, PLANNING_BUDGET_MS, op="<")


def _duplicated_chain(ctx):
    """Two separately-built identical chains over one shared scan; the
    string conjuncts are written first so combine-filters has something
    to re-rank, and the chains are CSE's motivating shape."""
    t = ctx.table("lineitem")

    def chain():
        return (
            t.filter(col("l_comment").contains("a"))
            .filter(col("l_shipmode").contains("AIR"))
            .filter(col("l_quantity") < 40.0)
            .agg(F.sum("l_extendedprice").alias("revenue"),
                 F.stddev("l_extendedprice").alias("spread"),
                 F.sem("l_extendedprice").alias("sem"),
                 F.var("l_discount").alias("disc_var"),
                 F.avg("l_quantity").alias("mean_qty"),
                 F.count_distinct("l_suppkey").alias("n_supp"),
                 by=["l_returnflag"])
        )

    return chain().join(chain(), on=[("l_returnflag", "l_returnflag")])


def _run_wall_clock(catalog, logical: bool):
    disable = () if logical else set(LOGICAL_RULE_NAMES)
    ctx = WakeContext(catalog, optimizer_disable=disable)
    start = time.perf_counter()
    edf = ctx.run(_duplicated_chain(ctx), capture_all=False)
    return time.perf_counter() - start, edf.get_final(), ctx.last_trace


def test_cse_and_reorder_speedup(bench_data, guard, emit):
    catalog, _tables = bench_data
    # Warm the page cache so both strategies read warm files.
    _run_wall_clock(catalog, logical=False)
    off_time, off_final, off_trace = _run_wall_clock(
        catalog, logical=False
    )
    on_time, on_final, on_trace = _run_wall_clock(catalog, logical=True)
    assert not set(off_trace.by_rule()) & set(LOGICAL_RULE_NAMES)
    fired = on_trace.by_rule()
    guard("common_subplan_rewrites", fired.get("common-subplan", 0), 2)
    guard("combine_filters_rewrites", fired.get("combine-filters", 0), 1)

    # Same answer both ways (each chain's column, same bytes).
    assert tuple(on_final.column_names) == tuple(off_final.column_names)
    for name in off_final.column_names:
        assert (on_final.column(name).tobytes()
                == off_final.column(name).tobytes()), name

    speedup = off_time / max(on_time, 1e-9)
    emit(banner(
        "E15 — CSE + filter-reorder payoff (duplicated chain over "
        "lineitem, logical rules on vs off)"
    ))
    emit(format_table(
        ["configuration", "wall s", "rewrites"],
        [
            ["logical rules off", off_time, off_trace.total_rewrites],
            ["logical rules on", on_time, on_trace.total_rewrites],
            ["speedup", speedup, ""],
        ],
    ))
    guard("cse_reorder_speedup", speedup, 1.5)
